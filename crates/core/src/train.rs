//! Training as a first-class, preemptible, resumable workload.
//!
//! The paper's pipeline treats finetuning as a blocking prologue inside
//! [`crate::PatternPaint::finetune`]. This module makes training a
//! *job*: a [`TrainSpec`] describes a fine-tune declaratively (epochs,
//! batch mix, EMA, datasets, output key) and runs through
//! [`crate::Service::submit`] as `JobKind::Train` — admitted, metered,
//! retried, deadline-bounded and preempted by the same machinery that
//! serves generation.
//!
//! The unit of progress is the **epoch**: [`TrainRun::run_epoch`] is a
//! deterministic pure function of (weights, optimiser state, EMA state,
//! seed, epoch index), and [`TrainRun::checkpoint`] persists all four
//! after every epoch — a PPCK v2 checkpoint (weights + lineage) plus a
//! PPTS state blob (optimiser moments, EMA shadow, RNG cursor). A run
//! killed or parked at any epoch boundary resumes **bit-identically**:
//! the weights after `resume + remaining epochs` equal those after an
//! uninterrupted run.
//!
//! Lineage: a fine-tune records its parent engine's checkpoint
//! checksum ([`pp_diffusion::checkpoint_checksum`]) in the PPCK v2
//! lineage section, so a trained artifact is content-addressed to the
//! exact weights it forked from and can be A/B'd against its parent
//! through [`crate::Fleet::from_engines`].
//!
//! Determinism contract for this file: no wall-clock reads and no
//! ambient randomness — preemption timing, deadlines and backoff live
//! in `crate::service`, which owns the clock.

use crate::artifact::{validate_key, ArtifactError, ArtifactStore, ByteReader, ByteWriter};
use crate::engine::{session_keys, Engine};
use crate::error::PpError;
use crate::library::PatternLibrary;
use pp_diffusion::{
    checkpoint_checksum, load_checkpoint_with, save_checkpoint_with, CheckpointLineage,
    DiffusionModel, EmaShadow, TrainReport,
};
use pp_geometry::GrayImage;
use pp_nn::{Adam, AdamState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Magic of the PPTS training-state blob (optimiser moments, EMA
/// shadow, RNG cursor) written next to each epoch checkpoint.
pub const TRAIN_STATE_MAGIC: [u8; 4] = *b"PPTS";

/// PPTS format version this build writes and reads.
pub const TRAIN_STATE_VERSION: u32 = 1;

/// Which weight set a finished run exports as its checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExportWeights {
    /// The live weights after the last optimiser step (the default).
    #[default]
    Live,
    /// The EMA shadow weights (requires [`TrainSpec::ema_decay`]).
    Ema,
}

/// A declarative description of one training job: what to train on,
/// for how long, and where the artifact goes.
///
/// Build with [`TrainSpec::new`] and chain the `with_*` setters; submit
/// as [`crate::JobKind::Train`] (typically
/// `JobSpec::train(spec)`). Training defaults to
/// [`crate::QosClass::BestEffort`] — it is the canonical scavenger
/// workload, parked whenever interactive or batch tenants need the
/// pool.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Epochs to run; each is [`TrainSpec::steps_per_epoch`] optimiser
    /// steps and ends at a checkpoint + preemption point.
    pub epochs: u32,
    /// Optimiser steps per epoch.
    pub steps_per_epoch: usize,
    /// Images per optimiser step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Prior-preservation weight λ (paper Eq. 7), used when
    /// [`TrainSpec::prior_count`] > 0.
    pub lambda: f32,
    /// Prior-class samples drawn from the *parent* model before
    /// training starts; 0 disables prior preservation.
    pub prior_count: usize,
    /// EMA decay for shadow weights (e.g. 0.99); `None` keeps live
    /// weights only.
    pub ema_decay: Option<f32>,
    /// Which weight set the finished checkpoint carries.
    pub export: ExportWeights,
    /// Session names whose PPSQ libraries join the training set — a
    /// finished generation session's output becomes training data.
    pub datasets: Vec<String>,
    /// Synthetic foundation-corpus images
    /// ([`pp_pdk::foundation_corpus`]) mixed into the training set.
    pub synth_corpus: usize,
    /// Output artifact name: the run writes `train-<output>.ppck` and
    /// `train-<output>.state`.
    pub output: String,
}

impl TrainSpec {
    /// A spec with serviceable defaults: 4 epochs × 25 steps, batch 4,
    /// lr 1e-3, prior preservation (2 priors at λ 0.5), EMA 0.99,
    /// live-weight export, no extra datasets.
    pub fn new(output: impl Into<String>) -> TrainSpec {
        TrainSpec {
            epochs: 4,
            steps_per_epoch: 25,
            batch: 4,
            lr: 1e-3,
            lambda: 0.5,
            prior_count: 2,
            ema_decay: Some(0.99),
            export: ExportWeights::Live,
            datasets: Vec::new(),
            synth_corpus: 0,
            output: output.into(),
        }
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: u32) -> TrainSpec {
        self.epochs = epochs;
        self
    }

    /// Sets optimiser steps per epoch.
    pub fn with_steps_per_epoch(mut self, steps: usize) -> TrainSpec {
        self.steps_per_epoch = steps;
        self
    }

    /// Sets the per-step batch size.
    pub fn with_batch(mut self, batch: usize) -> TrainSpec {
        self.batch = batch;
        self
    }

    /// Sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> TrainSpec {
        self.lr = lr;
        self
    }

    /// Sets the prior-preservation mix: `count` priors at weight
    /// `lambda`.
    pub fn with_prior(mut self, count: usize, lambda: f32) -> TrainSpec {
        self.prior_count = count;
        self.lambda = lambda;
        self
    }

    /// Sets the EMA decay (`None` disables shadow weights).
    pub fn with_ema(mut self, decay: Option<f32>) -> TrainSpec {
        self.ema_decay = decay;
        self
    }

    /// Sets which weight set the finished checkpoint exports.
    pub fn with_export(mut self, export: ExportWeights) -> TrainSpec {
        self.export = export;
        self
    }

    /// Adds a saved session whose PPSQ library joins the training set.
    pub fn with_dataset(mut self, session: impl Into<String>) -> TrainSpec {
        self.datasets.push(session.into());
        self
    }

    /// Sets how many synthetic foundation-corpus images to mix in.
    pub fn with_synth_corpus(mut self, n: usize) -> TrainSpec {
        self.synth_corpus = n;
        self
    }

    /// The artifact keys this spec writes: `(checkpoint, state)`.
    pub fn keys(&self) -> (String, String) {
        (
            format!("train-{}.ppck", self.output),
            format!("train-{}.state", self.output),
        )
    }

    /// Validates the spec before admission: positive shape parameters,
    /// finite hyperparameters, EMA decay in `(0, 1)`, exportable weight
    /// selection, and store-safe artifact keys.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), PpError> {
        if self.epochs == 0 {
            return Err(PpError::Config(
                "train spec: epochs must be positive".into(),
            ));
        }
        if self.steps_per_epoch == 0 {
            return Err(PpError::Config(
                "train spec: steps_per_epoch must be positive".into(),
            ));
        }
        if self.batch == 0 {
            return Err(PpError::Config("train spec: batch must be positive".into()));
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(PpError::Config(format!(
                "train spec: learning rate {} is not a positive finite number",
                self.lr
            )));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(PpError::Config(format!(
                "train spec: lambda {} is not a non-negative finite number",
                self.lambda
            )));
        }
        if let Some(decay) = self.ema_decay {
            if !(decay.is_finite() && 0.0 < decay && decay < 1.0) {
                return Err(PpError::Config(format!(
                    "train spec: EMA decay {decay} is outside (0, 1)"
                )));
            }
        }
        if self.export == ExportWeights::Ema && self.ema_decay.is_none() {
            return Err(PpError::Config(
                "train spec: EMA export requires an EMA decay".into(),
            ));
        }
        let (ckpt, state) = self.keys();
        validate_key(&ckpt)?;
        validate_key(&state)?;
        for name in &self.datasets {
            let (meta, lib) = session_keys(name);
            validate_key(&meta)?;
            validate_key(&lib)?;
        }
        Ok(())
    }
}

/// What a finished (or interrupted) training job reports — carried in
/// [`crate::JobReport::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSummary {
    /// Epochs completed and checkpointed.
    pub epochs_done: u32,
    /// Epochs the spec asked for.
    pub epochs_total: u32,
    /// Store key of the exported PPCK v2 checkpoint.
    pub checkpoint_key: String,
    /// Store key of the PPTS resume-state blob.
    pub state_key: String,
    /// Parent checkpoint checksum recorded in the lineage.
    pub parent: Option<u64>,
    /// The epoch this attempt resumed from (0 = fresh start).
    pub resumed_from: u32,
    /// Times the run was parked for higher-class work.
    pub preemptions: u32,
    /// Loss of the last completed optimiser step.
    pub final_loss: f32,
}

/// One training run's live state: the resumable core the service's
/// Train job driver steps epoch by epoch.
///
/// [`TrainRun::prepare`] either starts fresh from the engine's model or
/// resumes from the `(PPCK, PPTS)` pair a previous attempt
/// checkpointed; [`TrainRun::run_epoch`] advances one epoch
/// deterministically; [`TrainRun::checkpoint`] persists; and
/// [`TrainRun::finish`] writes the export selection. Nothing in here
/// reads a clock — scheduling decisions stay with the caller.
pub struct TrainRun {
    spec: TrainSpec,
    model: DiffusionModel,
    opt: Adam,
    ema: Option<EmaShadow>,
    starters: Vec<GrayImage>,
    prior: Vec<GrayImage>,
    parent: Option<u64>,
    seed: u64,
    epochs_done: u32,
    resumed_from: u32,
    preemptions: u32,
    final_loss: f32,
}

impl std::fmt::Debug for TrainRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainRun")
            .field("output", &self.spec.output)
            .field("epochs_done", &self.epochs_done)
            .field("epochs_total", &self.spec.epochs)
            .field("resumed_from", &self.resumed_from)
            .field("parent", &self.parent)
            .finish_non_exhaustive()
    }
}

/// The per-epoch RNG seed: SplitMix-style mix of the job seed and the
/// epoch ordinal, so each epoch draws an independent stream and a
/// resumed run replays exactly the streams the uninterrupted run would
/// have drawn.
fn epoch_seed(seed: u64, epoch: u32) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(epoch) + 1)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Upper bound on tensors (and on a single tensor's length) a PPTS
/// blob may claim — a corrupt length field must fail the read, not
/// size an allocation (the PPCK/PPJS rule).
const MAX_STATE_TENSORS: usize = 1 << 16;
const MAX_TENSOR_LEN: usize = 1 << 28;

fn write_tensor(w: &mut ByteWriter, t: &[f32]) {
    w.u32(t.len() as u32);
    for &v in t {
        w.f32(v);
    }
}

fn read_tensor(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<f32>, String> {
    let len = r.u32(what)? as usize;
    if len > MAX_TENSOR_LEN {
        return Err(format!("{what}: implausible tensor length {len}"));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.f32(what)?);
    }
    Ok(out)
}

/// Serialises the resumable state (seed, epoch cursor, Adam moments,
/// EMA shadow) as a checksummed PPTS blob.
fn encode_state(seed: u64, epochs_done: u32, opt: &Adam, ema: Option<&EmaShadow>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&TRAIN_STATE_MAGIC);
    w.u32(TRAIN_STATE_VERSION);
    w.u64(seed);
    w.u32(epochs_done);
    let state = opt.state();
    w.u64(state.t);
    w.u32(state.moments.len() as u32);
    for (m, v) in &state.moments {
        write_tensor(&mut w, m);
        write_tensor(&mut w, v);
    }
    match ema {
        None => w.u8(0),
        Some(shadow) => {
            w.u8(1);
            w.f32(shadow.decay());
            w.u32(shadow.tensors().len() as u32);
            for t in shadow.tensors() {
                write_tensor(&mut w, t);
            }
        }
    }
    let mut bytes = w.into_vec();
    let sum = fnv1a(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Parsed PPTS payload: `(seed, epochs_done, adam state, ema decay +
/// tensors)`.
type DecodedState = (u64, u32, AdamState, Option<(f32, Vec<Vec<f32>>)>);

/// Parses and checksum-verifies a PPTS blob written by `encode_state`.
fn decode_state(bytes: &[u8], key: &str) -> Result<DecodedState, PpError> {
    let corrupt = |detail: String| PpError::Artifact(ArtifactError::corrupt(key, detail));
    if bytes.len() < 8 {
        return Err(corrupt(format!(
            "{} bytes is not a PPTS stream",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().map_err(|_| {
        // split_at guarantees 8 bytes; defensive for the type system.
        ArtifactError::corrupt(key, "checksum tail is not 8 bytes")
    })?);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        )));
    }
    let mut r = ByteReader::new(body);
    if r.bytes(4, "magic").map_err(corrupt)? != TRAIN_STATE_MAGIC {
        return Err(corrupt("missing PPTS magic".into()));
    }
    let version = r.u32("version").map_err(corrupt)?;
    if version != TRAIN_STATE_VERSION {
        return Err(corrupt(format!("unsupported PPTS version {version}")));
    }
    let seed = r.u64("seed").map_err(corrupt)?;
    let epochs_done = r.u32("epochs_done").map_err(corrupt)?;
    let t = r.u64("adam step").map_err(corrupt)?;
    let n = r.u32("moment tensor count").map_err(corrupt)? as usize;
    if n > MAX_STATE_TENSORS {
        return Err(corrupt(format!("implausible moment tensor count {n}")));
    }
    let mut moments = Vec::with_capacity(n);
    for _ in 0..n {
        let m = read_tensor(&mut r, "adam m").map_err(corrupt)?;
        let v = read_tensor(&mut r, "adam v").map_err(corrupt)?;
        moments.push((m, v));
    }
    let ema = match r.u8("ema flag").map_err(corrupt)? {
        0 => None,
        1 => {
            let decay = r.f32("ema decay").map_err(corrupt)?;
            let n = r.u32("ema tensor count").map_err(corrupt)? as usize;
            if n > MAX_STATE_TENSORS {
                return Err(corrupt(format!("implausible EMA tensor count {n}")));
            }
            let mut tensors = Vec::with_capacity(n);
            for _ in 0..n {
                tensors.push(read_tensor(&mut r, "ema tensor").map_err(corrupt)?);
            }
            Some((decay, tensors))
        }
        f => return Err(corrupt(format!("unknown EMA flag {f}"))),
    };
    r.expect_end("train state").map_err(corrupt)?;
    Ok((seed, epochs_done, AdamState { t, moments }, ema))
}

/// Assembles the training set: engine starters, then synthetic
/// foundation images, then each named session's PPSQ library, in spec
/// order (order is part of the determinism contract — the batch
/// sampler indexes into this vector).
fn assemble_dataset(
    engine: &Engine,
    store: &dyn ArtifactStore,
    spec: &TrainSpec,
    seed: u64,
) -> Result<Vec<GrayImage>, PpError> {
    let mut images: Vec<GrayImage> = engine
        .starters()
        .iter()
        .map(GrayImage::from_layout)
        .collect();
    if spec.synth_corpus > 0 {
        let corpus = pp_pdk::foundation_corpus(
            spec.synth_corpus,
            engine.node().clip(),
            epoch_seed(seed, u32::MAX),
        );
        images.extend(corpus.iter().map(GrayImage::from_layout));
    }
    for name in &spec.datasets {
        let (_, lib_key) = session_keys(name);
        let bytes = store.get(&lib_key)?;
        let library = PatternLibrary::read_squish(bytes.as_slice())
            .map_err(|e| PpError::Artifact(ArtifactError::corrupt(&lib_key, e.to_string())))?;
        images.extend(library.patterns().iter().map(GrayImage::from_layout));
    }
    Ok(images)
}

impl TrainRun {
    /// Prepares a run: fresh from the engine's model when no state blob
    /// exists under the spec's keys, otherwise resumed bit-identically
    /// from the last checkpointed epoch.
    ///
    /// The parent lineage is the engine checkpoint's content address
    /// (its trailing checksum), computed from the engine's weights —
    /// identical to the checksum of the `model.ppck` the engine was
    /// saved as.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] for an invalid spec, [`PpError::Artifact`] /
    /// [`PpError::Checkpoint`] for unreadable or corrupt resume
    /// artifacts (a state blob whose seed or epoch disagrees with the
    /// checkpoint lineage is corrupt, not silently restarted).
    pub fn prepare(
        engine: &Engine,
        store: &dyn ArtifactStore,
        spec: &TrainSpec,
        seed: u64,
    ) -> Result<TrainRun, PpError> {
        spec.validate()?;
        let (ckpt_key, state_key) = spec.keys();
        let starters = assemble_dataset(engine, store, spec, seed)?;
        let prior = if spec.prior_count > 0 {
            engine
                .model()
                .sample_prior(spec.prior_count, epoch_seed(seed, u32::MAX - 1))
        } else {
            Vec::new()
        };
        // The parent address: what the engine's weights serialise to.
        let mut parent_blob = Vec::new();
        let mut parent_model = engine.model().clone();
        pp_diffusion::save_checkpoint(&mut parent_model, &mut parent_blob)?;
        let parent = Some(checkpoint_checksum(&parent_blob)?);

        if store.contains(&state_key)? {
            let state_bytes = store.get(&state_key)?;
            let (saved_seed, epochs_done, adam, ema_state) =
                decode_state(&state_bytes, &state_key)?;
            if saved_seed != seed {
                return Err(PpError::Artifact(ArtifactError::corrupt(
                    &state_key,
                    format!("state was written for seed {saved_seed}, job runs seed {seed}"),
                )));
            }
            let ckpt_bytes = store.get(&ckpt_key)?;
            let (mut model, lineage) = load_checkpoint_with(ckpt_bytes.as_slice())?;
            if lineage.epoch != epochs_done {
                return Err(PpError::Artifact(ArtifactError::corrupt(
                    &state_key,
                    format!(
                        "state epoch {epochs_done} disagrees with checkpoint lineage epoch {}",
                        lineage.epoch
                    ),
                )));
            }
            if model.config() != engine.model().config() {
                return Err(PpError::Artifact(ArtifactError::corrupt(
                    &ckpt_key,
                    "checkpoint architecture disagrees with the engine",
                )));
            }
            let ema = match ema_state {
                Some((decay, tensors)) => {
                    Some(EmaShadow::from_tensors(&mut model, decay, tensors)?)
                }
                None => None,
            };
            return Ok(TrainRun {
                spec: spec.clone(),
                model,
                opt: Adam::restore(spec.lr, adam),
                ema,
                starters,
                prior,
                parent: lineage.parent.or(parent),
                seed,
                epochs_done,
                resumed_from: epochs_done,
                preemptions: 0,
                final_loss: 0.0,
            });
        }

        let mut model = engine.model().clone();
        let ema = spec
            .ema_decay
            .map(|decay| EmaShadow::new(&mut model, decay));
        Ok(TrainRun {
            spec: spec.clone(),
            model,
            opt: Adam::new(spec.lr),
            ema,
            starters,
            prior,
            parent,
            seed,
            epochs_done: 0,
            resumed_from: 0,
            preemptions: 0,
            final_loss: 0.0,
        })
    }

    /// Epochs completed so far (across attempts — resumes carry it).
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Epochs the spec asks for in total.
    pub fn epochs_total(&self) -> u32 {
        self.spec.epochs
    }

    /// Whether every requested epoch has run.
    pub fn is_done(&self) -> bool {
        self.epochs_done >= self.spec.epochs
    }

    /// Records one park-for-higher-class-work episode (called by the
    /// service's Train driver; this module never decides scheduling).
    pub fn note_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// Runs the next epoch: `steps_per_epoch` optimiser steps over the
    /// starter/prior mix, folding the EMA shadow each step.
    /// Deterministic given the run's state — the epoch's RNG stream is
    /// derived from `(seed, epoch index)` alone.
    ///
    /// # Errors
    ///
    /// [`PpError::Model`] / [`PpError::Shape`] when the dataset is
    /// empty or mismatches the architecture (converted from
    /// [`pp_diffusion::ModelError`]).
    pub fn run_epoch(&mut self) -> Result<TrainReport, PpError> {
        let mut rng = StdRng::seed_from_u64(epoch_seed(self.seed, self.epochs_done));
        let report = self.model.train_epoch(
            &self.starters,
            &self.prior,
            self.spec.lambda,
            self.spec.steps_per_epoch,
            self.spec.batch,
            &mut self.opt,
            &mut rng,
            self.ema.as_mut(),
        )?;
        self.epochs_done += 1;
        self.final_loss = report.final_loss;
        Ok(report)
    }

    /// Persists the epoch boundary: live weights + lineage as PPCK v2
    /// under the checkpoint key, optimiser/EMA/RNG state as PPTS under
    /// the state key. Called after every epoch so a kill or preemption
    /// loses at most the epoch in flight.
    ///
    /// # Errors
    ///
    /// [`PpError::Checkpoint`] when serialisation fails,
    /// [`PpError::Artifact`] when the store rejects a write.
    pub fn checkpoint(&mut self, store: &dyn ArtifactStore) -> Result<(), PpError> {
        let (ckpt_key, state_key) = self.spec.keys();
        let lineage = CheckpointLineage {
            parent: self.parent,
            epoch: self.epochs_done,
        };
        let mut blob = Vec::new();
        save_checkpoint_with(&mut self.model, &mut blob, lineage)?;
        store.put(&ckpt_key, &blob)?;
        let state = encode_state(self.seed, self.epochs_done, &self.opt, self.ema.as_ref());
        store.put(&state_key, &state)?;
        Ok(())
    }

    /// Writes the final export: for [`ExportWeights::Ema`] the EMA
    /// shadow weights replace the live ones in the stored checkpoint
    /// (same lineage); for [`ExportWeights::Live`] the last
    /// [`TrainRun::checkpoint`] already is the export.
    ///
    /// # Errors
    ///
    /// Same as [`TrainRun::checkpoint`].
    pub fn finish(&mut self, store: &dyn ArtifactStore) -> Result<(), PpError> {
        if self.spec.export == ExportWeights::Ema {
            if let Some(ema) = &self.ema {
                let mut export = self.model.clone();
                ema.apply_to(&mut export)?;
                let (ckpt_key, _) = self.spec.keys();
                let lineage = CheckpointLineage {
                    parent: self.parent,
                    epoch: self.epochs_done,
                };
                let mut blob = Vec::new();
                save_checkpoint_with(&mut export, &mut blob, lineage)?;
                store.put(&ckpt_key, &blob)?;
            }
        }
        Ok(())
    }

    /// The run's summary for [`crate::JobReport::train`].
    pub fn summary(&self) -> TrainSummary {
        let (checkpoint_key, state_key) = self.spec.keys();
        TrainSummary {
            epochs_done: self.epochs_done,
            epochs_total: self.spec.epochs,
            checkpoint_key,
            state_key,
            parent: self.parent,
            resumed_from: self.resumed_from,
            preemptions: self.preemptions,
            final_loss: self.final_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::MemStore;
    use crate::config::PipelineConfig;
    use pp_pdk::SynthNode;

    fn tiny_engine() -> Engine {
        Engine::builder(SynthNode::small(), PipelineConfig::tiny())
            .seed(3)
            .untrained_engine()
            .expect("tiny config is valid")
    }

    fn tiny_spec(output: &str) -> TrainSpec {
        TrainSpec::new(output)
            .with_epochs(2)
            .with_steps_per_epoch(2)
            .with_batch(2)
            .with_prior(1, 0.5)
    }

    #[test]
    fn spec_validation_names_the_field() {
        for (spec, needle) in [
            (tiny_spec("a").with_epochs(0), "epochs"),
            (tiny_spec("a").with_steps_per_epoch(0), "steps_per_epoch"),
            (tiny_spec("a").with_batch(0), "batch"),
            (tiny_spec("a").with_lr(0.0), "learning rate"),
            (tiny_spec("a").with_lr(f32::NAN), "learning rate"),
            (tiny_spec("a").with_prior(1, f32::INFINITY), "lambda"),
            (tiny_spec("a").with_ema(Some(1.5)), "EMA decay"),
            (
                tiny_spec("a")
                    .with_ema(None)
                    .with_export(ExportWeights::Ema),
                "EMA export",
            ),
            (tiny_spec("bad/key"), "key"),
            (tiny_spec("a").with_dataset("../escape"), "key"),
        ] {
            let err = spec.validate().expect_err("must reject");
            assert!(
                err.to_string().contains(needle),
                "expected {needle:?} in: {err}"
            );
        }
        tiny_spec("fine-1.run").validate().expect("valid spec");
    }

    #[test]
    fn state_blob_roundtrips_and_rejects_corruption() {
        let engine = tiny_engine();
        let store = MemStore::new();
        let mut run = TrainRun::prepare(&engine, &store, &tiny_spec("s"), 7).expect("prepare runs");
        run.run_epoch().expect("epoch runs");
        let blob = encode_state(7, 1, &run.opt, run.ema.as_ref());
        let (seed, epochs, adam, ema) = decode_state(&blob, "k").expect("decodes");
        assert_eq!(seed, 7);
        assert_eq!(epochs, 1);
        assert_eq!(adam, run.opt.state());
        let (decay, tensors) = ema.expect("spec has EMA");
        assert_eq!(decay, run.ema.as_ref().map(EmaShadow::decay).unwrap());
        assert_eq!(tensors, run.ema.as_ref().unwrap().tensors());

        // A flipped byte trips the checksum; truncation at every depth
        // of the header is typed, never a panic.
        let mut bad = blob.clone();
        bad[10] ^= 0x20;
        assert!(decode_state(&bad, "k").is_err());
        for cut in 0..24.min(blob.len()) {
            assert!(decode_state(&blob[..cut], "k").is_err(), "cut {cut}");
        }
        // An absurd claimed tensor count must fail before allocating.
        let mut absurd = blob.clone();
        absurd[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_state(&absurd, "k").is_err());
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted() {
        let engine = tiny_engine();
        let spec = tiny_spec("resume");

        // Uninterrupted: 2 epochs in one run.
        let solo_store = MemStore::new();
        let mut solo = TrainRun::prepare(&engine, &solo_store, &spec, 11).expect("prepare");
        while !solo.is_done() {
            solo.run_epoch().expect("epoch");
            solo.checkpoint(&solo_store).expect("checkpoint");
        }
        solo.finish(&solo_store).expect("finish");

        // Interrupted: 1 epoch, drop the run, resume from the store.
        let store = MemStore::new();
        let mut first = TrainRun::prepare(&engine, &store, &spec, 11).expect("prepare");
        first.run_epoch().expect("epoch");
        first.checkpoint(&store).expect("checkpoint");
        drop(first);
        let mut second = TrainRun::prepare(&engine, &store, &spec, 11).expect("re-prepare");
        assert_eq!(second.resumed_from, 1, "must resume, not restart");
        while !second.is_done() {
            second.run_epoch().expect("epoch");
            second.checkpoint(&store).expect("checkpoint");
        }
        second.finish(&store).expect("finish");

        let (ckpt_key, _) = spec.keys();
        assert_eq!(
            solo_store.get(&ckpt_key).unwrap(),
            store.get(&ckpt_key).unwrap(),
            "resumed weights must be bit-identical to uninterrupted"
        );
    }

    #[test]
    fn seed_mismatch_on_resume_is_a_typed_error() {
        let engine = tiny_engine();
        let store = MemStore::new();
        let spec = tiny_spec("seeded");
        let mut run = TrainRun::prepare(&engine, &store, &spec, 5).expect("prepare");
        run.run_epoch().expect("epoch");
        run.checkpoint(&store).expect("checkpoint");
        let err = TrainRun::prepare(&engine, &store, &spec, 6).expect_err("seed changed");
        assert!(err.to_string().contains("seed"), "was: {err}");
    }

    #[test]
    fn lineage_records_the_parent_engine_checkpoint() {
        let engine = tiny_engine();
        let store = MemStore::new();
        engine.save(&store).expect("engine saves");
        let stored = store.get(crate::engine::ENGINE_MODEL_KEY).unwrap();
        let parent_sum = checkpoint_checksum(&stored).unwrap();

        let spec = tiny_spec("child");
        let mut run = TrainRun::prepare(&engine, &store, &spec, 3).expect("prepare");
        run.run_epoch().expect("epoch");
        run.checkpoint(&store).expect("checkpoint");
        let (ckpt_key, _) = spec.keys();
        let (_, lineage) =
            load_checkpoint_with(store.get(&ckpt_key).unwrap().as_slice()).expect("loads");
        assert_eq!(
            lineage.parent,
            Some(parent_sum),
            "lineage must content-address the engine's own checkpoint"
        );
        assert_eq!(lineage.epoch, 1);
    }

    #[test]
    fn ema_export_differs_from_live_and_both_load() {
        let engine = tiny_engine();
        let spec = tiny_spec("ema")
            .with_ema(Some(0.5))
            .with_export(ExportWeights::Ema);
        let store = MemStore::new();
        let mut run = TrainRun::prepare(&engine, &store, &spec, 9).expect("prepare");
        while !run.is_done() {
            run.run_epoch().expect("epoch");
            run.checkpoint(&store).expect("checkpoint");
        }
        let (ckpt_key, _) = spec.keys();
        let live = store.get(&ckpt_key).unwrap();
        run.finish(&store).expect("finish");
        let ema = store.get(&ckpt_key).unwrap();
        assert_ne!(live, ema, "EMA export must replace live weights");
        load_checkpoint_with(live.as_slice()).expect("live loads");
        load_checkpoint_with(ema.as_slice()).expect("ema loads");
    }

    #[test]
    fn dataset_ingests_saved_session_libraries() {
        let engine = tiny_engine();
        let store = MemStore::new();
        let mut session = engine.session_seeded(4);
        session.seed_starters();
        session.save(&store, "corpus").expect("session saves");
        let spec = tiny_spec("ingest").with_dataset("corpus");
        let run = TrainRun::prepare(&engine, &store, &spec, 2).expect("prepare");
        assert!(
            run.starters.len() > engine.starters().len(),
            "session library must join the training set"
        );
        // A missing dataset is a typed error, not a silent skip.
        let missing = tiny_spec("missing").with_dataset("nope");
        let err = TrainRun::prepare(&engine, &store, &missing, 2).expect_err("missing");
        assert!(matches!(err, PpError::Artifact(_)), "was: {err}");
    }
}
