//! Versioned, durable artifacts: the persistence layer under
//! [`crate::Engine`] and [`crate::Session`].
//!
//! PatternPaint runs produce two artifacts worth keeping across
//! processes: the trained model (expensive to reproduce) and the
//! pattern libraries (the product). An [`ArtifactStore`] is a small
//! key/value abstraction over wherever those bytes live —
//! [`DirStore`] maps keys to files in a directory, [`MemStore`] keeps
//! them in memory for tests — and the engine/session save/resume
//! methods read and write through it:
//!
//! | key | contents |
//! |---|---|
//! | `engine.meta` | `PPEG` manifest: node, config, seed, finetune flag |
//! | `model.ppck` | versioned model checkpoint (`pp_diffusion::checkpoint`) |
//! | `session-<name>.meta` | `PPSS` manifest: session config, seed, progress counters |
//! | `session-<name>.ppsq` | the session library in squish form (`PPSQ v1`) |
//!
//! Failures surface as [`ArtifactError`] (wrapped in
//! [`crate::PpError::Artifact`] at the pipeline surface), whose
//! [`std::error::Error::source`] chain reaches the underlying
//! `io::Error` so operators can tell a full disk from a corrupt file.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// What went wrong talking to an [`ArtifactStore`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Reading or writing the backing storage failed.
    Io {
        /// The file (or store location) involved.
        path: PathBuf,
        /// The underlying failure (also exposed via
        /// [`std::error::Error::source`]).
        source: io::Error,
    },
    /// The requested key does not exist in the store.
    Missing {
        /// The absent key.
        key: String,
    },
    /// A key contains characters the store cannot represent safely.
    InvalidKey {
        /// The offending key.
        key: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Stored bytes parsed as none of the expected formats.
    Corrupt {
        /// The artifact key holding the bad bytes.
        key: String,
        /// What failed to parse or validate.
        detail: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, source } => {
                write!(f, "artifact i/o failed at {}: {source}", path.display())
            }
            ArtifactError::Missing { key } => write!(f, "artifact {key:?} not found"),
            ArtifactError::InvalidKey { key, reason } => {
                write!(f, "invalid artifact key {key:?}: {reason}")
            }
            ArtifactError::Corrupt { key, detail } => {
                write!(f, "corrupt artifact {key:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ArtifactError {
    pub(crate) fn corrupt(key: &str, detail: impl Into<String>) -> ArtifactError {
        ArtifactError::Corrupt {
            key: key.to_string(),
            detail: detail.into(),
        }
    }
}

/// Rejects keys that could escape a directory store or collide with
/// its temp files: only `[A-Za-z0-9._-]`, non-empty, no leading dot.
pub(crate) fn validate_key(key: &str) -> Result<(), ArtifactError> {
    let invalid = |reason| {
        Err(ArtifactError::InvalidKey {
            key: key.to_string(),
            reason,
        })
    };
    if key.is_empty() {
        return invalid("empty key");
    }
    if key.starts_with('.') {
        return invalid("keys must not start with '.'");
    }
    if !key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return invalid("keys may only contain [A-Za-z0-9._-]");
    }
    Ok(())
}

/// Durable storage for engine and session artifacts.
///
/// Implementations must make `put` atomic at the key level: a reader
/// never observes a half-written value (the directory store writes to
/// a temp file and renames). Keys are flat strings validated by the
/// store; the engine uses the fixed names listed in the module docs.
pub trait ArtifactStore: Send + Sync {
    /// Stores `bytes` under `key`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::InvalidKey`] for malformed keys,
    /// [`ArtifactError::Io`] when the backing storage fails.
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), ArtifactError>;

    /// Retrieves the value stored under `key`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Missing`] when the key does not exist, plus the
    /// same conditions as [`ArtifactStore::put`].
    fn get(&self, key: &str) -> Result<Vec<u8>, ArtifactError>;

    /// Whether `key` currently holds a value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ArtifactStore::put`].
    fn contains(&self, key: &str) -> Result<bool, ArtifactError>;

    /// All keys currently stored, sorted.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the backing storage fails.
    fn list(&self) -> Result<Vec<String>, ArtifactError>;
}

/// Copies every artifact whose key starts with `prefix` from `src` to
/// `dst`, returning how many were copied (possibly 0 — an absent
/// prefix is not an error). Each key is copied with one `get` + one
/// `put`, so `dst` readers inherit the store's key-level atomicity:
/// they may observe a prefix mid-copy, but never a torn value. This is
/// the fleet's affinity-migration primitive — moving a
/// `session-<name>.*` pair between replica stores when a pinned
/// replica is lost or drained.
///
/// # Errors
///
/// Whatever the underlying [`ArtifactStore`] operations raise; a
/// failed copy leaves already-copied keys in place.
pub fn copy_artifacts(
    src: &dyn ArtifactStore,
    dst: &dyn ArtifactStore,
    prefix: &str,
) -> Result<usize, ArtifactError> {
    let mut copied = 0;
    for key in src.list()? {
        if !key.starts_with(prefix) {
            continue;
        }
        dst.put(&key, &src.get(&key)?)?;
        copied += 1;
    }
    Ok(copied)
}

/// An [`ArtifactStore`] mapping each key to a file in one directory.
///
/// Writes go to a dot-prefixed temp file first and are renamed into
/// place, so concurrent readers (or a crash mid-save) never see a
/// truncated artifact.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<DirStore, ArtifactError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|source| ArtifactError::Io {
            path: root.clone(),
            source,
        })?;
        Ok(DirStore { root })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }
}

impl ArtifactStore for DirStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), ArtifactError> {
        validate_key(key)?;
        // Unique temp name per put: a fixed `.tmp-<key>` would let two
        // concurrent puts of the same key truncate each other's temp
        // file and rename half-written bytes into place, breaking the
        // trait's key-level atomicity guarantee.
        static PUT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = PUT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .root
            .join(format!(".tmp-{}-{seq}-{key}", std::process::id()));
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source| ArtifactError::Io { path, source }
        };
        std::fs::write(&tmp, bytes).map_err(io_err(&tmp))?;
        let dst = self.path_for(key);
        std::fs::rename(&tmp, &dst).map_err(io_err(&dst))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, ArtifactError> {
        validate_key(key)?;
        let path = self.path_for(key);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(ArtifactError::Missing {
                key: key.to_string(),
            }),
            Err(source) => Err(ArtifactError::Io { path, source }),
        }
    }

    fn contains(&self, key: &str) -> Result<bool, ArtifactError> {
        validate_key(key)?;
        Ok(self.path_for(key).is_file())
    }

    fn list(&self) -> Result<Vec<String>, ArtifactError> {
        let entries = std::fs::read_dir(&self.root).map_err(|source| ArtifactError::Io {
            path: self.root.clone(),
            source,
        })?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| ArtifactError::Io {
                path: self.root.clone(),
                source,
            })?;
            if let Some(name) = entry.file_name().to_str() {
                if validate_key(name).is_ok() && entry.path().is_file() {
                    keys.push(name.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

/// An in-memory [`ArtifactStore`] for tests and ephemeral runs.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl ArtifactStore for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), ArtifactError> {
        validate_key(key)?;
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, ArtifactError> {
        validate_key(key)?;
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
            .ok_or_else(|| ArtifactError::Missing {
                key: key.to_string(),
            })
    }

    fn contains(&self, key: &str) -> Result<bool, ArtifactError> {
        validate_key(key)?;
        Ok(self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(key))
    }

    fn list(&self) -> Result<Vec<String>, ArtifactError> {
        Ok(self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect())
    }
}

/// Little-endian manifest encoder (the engine/session `.meta` blobs).
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Infallible `io::Write`, so codecs defined against `io::Write`
/// (e.g. `pp_diffusion::checkpoint::write_config`) can target a
/// manifest blob directly.
impl io::Write for ByteWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// `io::Read` over the unconsumed tail, so codecs defined against
/// `io::Read` (e.g. `pp_diffusion::checkpoint::read_config`) can parse
/// out of a manifest blob in place.
impl io::Read for ByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.remaining().len());
        buf[..n].copy_from_slice(&self.remaining()[..n]);
        self.advance(n);
        Ok(n)
    }
}

/// Little-endian manifest decoder; every read reports truncation as a
/// `String` detail the caller wraps into [`ArtifactError::Corrupt`].
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated at {what} (offset {}, need {n} bytes, have {})",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        self.take(n, what)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("took 8 bytes")))
    }

    pub(crate) fn f32(&mut self, what: &str) -> Result<f32, String> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, String> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("took 8 bytes")))
    }

    pub(crate) fn remaining(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    pub(crate) fn advance(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.buf.len());
    }

    pub(crate) fn expect_end(&self, what: &str) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn mem_store_roundtrip_and_missing() {
        let store = MemStore::new();
        assert!(!store.contains("a.bin").unwrap());
        store.put("a.bin", b"hello").unwrap();
        assert_eq!(store.get("a.bin").unwrap(), b"hello");
        assert!(store.contains("a.bin").unwrap());
        assert_eq!(store.list().unwrap(), vec!["a.bin".to_string()]);
        assert!(matches!(
            store.get("b.bin").unwrap_err(),
            ArtifactError::Missing { .. }
        ));
    }

    #[test]
    fn copy_artifacts_moves_prefixed_keys_between_stores() {
        let src = MemStore::new();
        let dst = MemStore::new();
        src.put("session-a.meta", b"meta").unwrap();
        src.put("session-a.ppsq", b"lib").unwrap();
        src.put("engine.meta", b"engine").unwrap();
        let copied = copy_artifacts(&src, &dst, "session-a.").unwrap();
        assert_eq!(copied, 2, "exactly the session pair moves");
        assert_eq!(dst.get("session-a.meta").unwrap(), b"meta");
        assert_eq!(dst.get("session-a.ppsq").unwrap(), b"lib");
        assert!(!dst.contains("engine.meta").unwrap(), "prefix respected");
        // Source keeps its artifacts (copy, not move) and an absent
        // prefix is a no-op, not an error.
        assert_eq!(src.list().unwrap().len(), 3);
        assert_eq!(copy_artifacts(&src, &dst, "session-zzz.").unwrap(), 0);
    }

    #[test]
    fn keys_are_validated() {
        let store = MemStore::new();
        for bad in ["", "..", "a/b", "a\\b", ".hidden", "sp ace"] {
            assert!(
                matches!(
                    store.put(bad, b"x").unwrap_err(),
                    ArtifactError::InvalidKey { .. }
                ),
                "key {bad:?} should be rejected"
            );
        }
        store.put("ok-key_1.bin", b"x").unwrap();
    }

    #[test]
    fn dir_store_roundtrip_and_atomicity_markers() {
        let root = std::env::temp_dir().join(format!("pp-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = DirStore::open(&root).unwrap();
        store.put("m.bin", b"abc").unwrap();
        store.put("m.bin", b"abcd").unwrap(); // overwrite
        assert_eq!(store.get("m.bin").unwrap(), b"abcd");
        assert_eq!(store.list().unwrap(), vec!["m.bin".to_string()]);
        // No temp residue after successful puts.
        let residue = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .count();
        assert_eq!(residue, 0);
        let err = store.get("absent").unwrap_err();
        assert!(matches!(err, ArtifactError::Missing { .. }));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn io_errors_chain_to_source() {
        // Opening a store under a path that is a *file* must fail with
        // an Io variant whose source is the root io::Error.
        let root = std::env::temp_dir().join(format!("pp-artifact-file-{}", std::process::id()));
        std::fs::write(&root, b"not a dir").unwrap();
        let err = DirStore::open(&root).unwrap_err();
        assert!(matches!(err, ArtifactError::Io { .. }));
        assert!(err.source().is_some(), "Io must expose its source");
        let _ = std::fs::remove_file(&root);
    }

    #[test]
    fn byte_cursor_roundtrip_and_truncation() {
        let mut w = ByteWriter::new();
        w.bytes(b"HDR");
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(1 << 40);
        w.f32(1.5);
        w.f64(-2.25);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.bytes(3, "hdr").unwrap(), b"HDR");
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), 1 << 40);
        assert_eq!(r.f32("d").unwrap(), 1.5);
        assert_eq!(r.f64("e").unwrap(), -2.25);
        r.expect_end("manifest").unwrap();
        let mut r = ByteReader::new(&buf[..5]);
        let _ = r.bytes(3, "hdr").unwrap();
        let _ = r.u8("a").unwrap();
        let err = r.u32("b").unwrap_err();
        assert!(err.contains("truncated at b"), "got: {err}");
    }
}
