//! Shared `(template, mask)` job preparation.

use pp_geometry::Layout;
use pp_inpaint::Mask;
use std::sync::Arc;

/// An ordered set of `(template, mask)` inpainting jobs.
///
/// Templates and masks are `Arc`-shared: generation rounds fan a
/// handful of starters out into thousands of variations, and cloning
/// the full `Layout` per variation was measurable allocator traffic in
/// the sampling hot path. Fan-out costs pointer bumps; only the first
/// reference of each template/mask pays a deep copy.
#[derive(Debug, Clone, Default)]
pub struct JobSet {
    jobs: Vec<(Arc<Layout>, Arc<Mask>)>,
}

impl JobSet {
    /// An empty job set.
    pub fn new() -> Self {
        Self::default()
    }

    /// One shared job per `(template, mask)` pair.
    pub fn from_pairs(pairs: &[(Layout, Mask)]) -> Self {
        let mut set = Self::new();
        for (template, mask) in pairs {
            set.push(Arc::new(template.clone()), Arc::new(mask.clone()));
        }
        set
    }

    /// `n` jobs cycling independently through `templates` and `masks`
    /// (job `i` pairs `templates[i % ..]` with `masks[i % ..]`) — the
    /// shape whole-pattern samplers and fixed-count benches use. Each
    /// template/mask is shared, not cloned per job.
    ///
    /// # Panics
    ///
    /// Panics if `n > 0` and either list is empty.
    pub fn cycle(templates: &[Layout], masks: &[Mask], n: usize) -> Self {
        let templates: Vec<Arc<Layout>> = templates.iter().cloned().map(Arc::new).collect();
        let masks: Vec<Arc<Mask>> = masks.iter().cloned().map(Arc::new).collect();
        let mut set = Self::new();
        for i in 0..n {
            set.push(
                Arc::clone(&templates[i % templates.len()]),
                Arc::clone(&masks[i % masks.len()]),
            );
        }
        set
    }

    /// Appends one job.
    pub fn push(&mut self, template: Arc<Layout>, mask: Arc<Mask>) {
        self.jobs.push((template, mask));
    }

    /// Appends `variations` jobs sharing one template and mask
    /// (`Arc` clones only).
    pub fn push_fan_out(&mut self, template: &Arc<Layout>, mask: &Arc<Mask>, variations: usize) {
        self.jobs.reserve(variations);
        for _ in 0..variations {
            self.jobs.push((Arc::clone(template), Arc::clone(mask)));
        }
    }

    /// Keeps only the first `n` jobs (no-op when `n >= len`); how
    /// sample budgets shrink a request without re-deriving it.
    pub fn truncate(&mut self, n: usize) {
        self.jobs.truncate(n);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the set holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[(Arc<Layout>, Arc<Mask>)] {
        &self.jobs
    }

    /// Iterates over the jobs in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Arc<Layout>, Arc<Mask>)> {
        self.jobs.iter()
    }
}

impl<'a> IntoIterator for &'a JobSet {
    type Item = &'a (Arc<Layout>, Arc<Mask>);
    type IntoIter = std::slice::Iter<'a, (Arc<Layout>, Arc<Mask>)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;
    use pp_inpaint::MaskSet;

    #[test]
    fn fan_out_shares_allocations() {
        let mut layout = Layout::new(16, 16);
        layout.fill_rect(Rect::new(2, 2, 3, 10));
        let template = Arc::new(layout);
        let mask = Arc::new(MaskSet::Default.masks(16)[0].clone());
        let mut set = JobSet::new();
        set.push_fan_out(&template, &mask, 5);
        assert_eq!(set.len(), 5);
        for (t, m) in &set {
            assert!(Arc::ptr_eq(t, &template));
            assert!(Arc::ptr_eq(m, &mask));
        }
    }

    #[test]
    fn from_pairs_preserves_order() {
        let a = Layout::new(16, 16);
        let mut b = Layout::new(16, 16);
        b.fill_rect(Rect::new(4, 4, 3, 8));
        let mask = MaskSet::Default.masks(16)[0].clone();
        let set = JobSet::from_pairs(&[(a.clone(), mask.clone()), (b.clone(), mask)]);
        assert_eq!(set.len(), 2);
        assert_eq!(*set.jobs()[0].0, a);
        assert_eq!(*set.jobs()[1].0, b);
        assert!(!set.is_empty());
        assert!(JobSet::new().is_empty());
    }
}
