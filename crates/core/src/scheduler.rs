//! The engine scheduler: many sessions' requests, one model, fair
//! round-robin micro-batching.
//!
//! A solo pipeline gives each generation round a private pool of
//! sampling workers ([`crate::DiffusionSampler`] spawns them per
//! request). When one [`crate::Engine`] serves many [`crate::Session`]s
//! that is the wrong shape: N concurrent rounds would fight over cores
//! with N×`threads` workers, and a long round would starve a short one.
//! The [`Scheduler`] instead owns a fixed pool of
//! [`pp_diffusion::InpaintWorker`]s bound to the engine's shared model
//! and *interleaves* submissions at micro-batch granularity: each
//! worker repeatedly takes the next micro-batch from the submission at
//! the front of a round-robin queue, so every active session advances
//! at the same micro-batch rate no matter how large its request is.
//!
//! Determinism: a job's output depends only on `(template, mask,
//! seed ^ job_index)` — never on which worker ran it or how jobs were
//! grouped into network passes (`pp-diffusion` pins this with
//! `infer_batch_rows_match_solo`). Delivery is reassembled per
//! submission in job order before it reaches the round tail, whose
//! admission is order-exact. Scheduled sessions therefore produce
//! libraries bit-identical to solo pipelines, which
//! `tests/engine_sessions.rs` asserts.
//!
//! Cancellation is cooperative, as elsewhere: a cancelled submission is
//! retired at its next dispatch opportunity, finished micro-batches
//! still reach the consumer, and the stream ends early without error.
//! Dropping the [`Scheduler`] aborts still-queued submissions with an
//! explicit error (never a silently short stream) and joins the pool.

use crate::error::PpError;
use crate::jobs::JobSet;
use crate::pipeline::RawSample;
use crate::stages::{SampleStream, Sampler};
use crate::stream::{CancelToken, Progress, StreamOptions};
use pp_diffusion::DiffusionModel;
use pp_geometry::{GrayImage, Layout};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One delivery from a worker to a submission's consumer.
enum SchedMsg {
    /// `samples[i]` answers job `start + i` of the submission.
    Batch {
        start: usize,
        samples: Vec<GrayImage>,
    },
    /// The scheduler shut down (or a worker failed) before this
    /// submission finished; the stream surfaces an error.
    Aborted(String),
}

/// A queued request: shared job images plus a dispatch cursor.
struct Submission {
    jobs: Arc<Vec<(GrayImage, GrayImage)>>,
    seed: u64,
    batch: usize,
    cursor: usize,
    cancel: CancelToken,
    /// Internal retire flag, distinct from the caller's `cancel`
    /// token (which may be shared across rounds): set by workers when
    /// delivery fails or the submission is poisoned, so the dispatcher
    /// stops feeding a request nobody is listening to.
    retired: Arc<std::sync::atomic::AtomicBool>,
    tx: Sender<SchedMsg>,
}

/// One unit of worker work: a contiguous micro-batch of a submission.
struct Task {
    jobs: Arc<Vec<(GrayImage, GrayImage)>>,
    range: Range<usize>,
    seed: u64,
    tx: Sender<SchedMsg>,
    /// The submission's retire flag: workers set it when delivery
    /// fails (consumer dropped the stream) or after sending
    /// `Aborted`, so the dispatcher retires the submission instead of
    /// burning the shared pool on micro-batches nobody will receive.
    retired: Arc<std::sync::atomic::AtomicBool>,
}

struct SchedState {
    queue: VecDeque<Submission>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
    image: u32,
}

impl Shared {
    /// Pops the next micro-batch in round-robin order; retires
    /// exhausted and cancelled submissions (dropping their sender ends
    /// the stream — cleanly for cancellation, which is not an error).
    fn take_task(state: &mut SchedState) -> Option<Task> {
        use std::sync::atomic::Ordering;
        while let Some(mut sub) = state.queue.pop_front() {
            if sub.cancel.is_cancelled() || sub.retired.load(Ordering::Relaxed) {
                continue;
            }
            let start = sub.cursor;
            let end = (start + sub.batch).min(sub.jobs.len());
            sub.cursor = end;
            let task = Task {
                jobs: Arc::clone(&sub.jobs),
                range: start..end,
                seed: sub.seed,
                tx: sub.tx.clone(),
                retired: Arc::clone(&sub.retired),
            };
            if end < sub.jobs.len() {
                state.queue.push_back(sub);
            }
            return Some(task);
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, model: Arc<DiffusionModel>) {
    let mut worker = model.worker();
    loop {
        let task = {
            let mut st = shared.state.lock().expect("scheduler state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(task) = Shared::take_task(&mut st) {
                    break task;
                }
                st = shared.cv.wait(st).expect("scheduler state poisoned");
            }
        };
        let refs: Vec<(&GrayImage, &GrayImage)> = task.jobs[task.range.clone()]
            .iter()
            .map(|(i, m)| (i, m))
            .collect();
        let seeds: Vec<u64> = task.range.clone().map(|i| task.seed ^ i as u64).collect();
        let (msg, poisoned) = match worker.run(&refs, &seeds) {
            Ok(samples) => (
                SchedMsg::Batch {
                    start: task.range.start,
                    samples,
                },
                false,
            ),
            // Shapes are validated at submit time, so this is a
            // defensive path; the consumer still sees a hard error
            // rather than a silently short stream.
            Err(e) => (
                SchedMsg::Aborted(format!("scheduler worker failed: {e}")),
                true,
            ),
        };
        // A send error means the consumer dropped the stream, and a
        // poisoned submission will never deliver anything useful
        // again: retire either way so the dispatcher stops sampling
        // micro-batches nobody will receive (each one is full DDIM
        // inference stolen from live submissions). The caller's
        // cancel token is left alone — it may be shared across
        // rounds.
        if task.tx.send(msg).is_err() || poisoned {
            task.retired
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// A shared pool of sampling workers serving many sessions fairly.
///
/// Created by [`crate::Engine::scheduler`]. Keep it alive while
/// attached sessions run: dropping it joins the workers and aborts
/// still-queued submissions with an error. Cheap handles
/// ([`Scheduler::handle`]) are what sessions hold.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("image", &self.shared.image)
            .finish()
    }
}

impl Scheduler {
    /// Spawns `threads` workers bound to `model` (at least one).
    pub(crate) fn new(model: Arc<DiffusionModel>, threads: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            image: model.config().image,
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let model = Arc::clone(&model);
                std::thread::spawn(move || worker_loop(shared, model))
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// A cheap, cloneable handle sessions submit through.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("scheduler state poisoned");
            st.shutdown = true;
            // Still-queued submissions must not end as silently short
            // streams: abort them explicitly.
            for sub in st.queue.drain(..) {
                let _ = sub
                    .tx
                    .send(SchedMsg::Aborted("scheduler shut down mid-request".into()));
            }
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A cloneable submission handle onto a [`Scheduler`]'s worker pool.
#[derive(Clone)]
pub struct SchedulerHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerHandle")
            .field("image", &self.shared.image)
            .finish()
    }
}

impl SchedulerHandle {
    /// Queues `jobs` for sampling with per-job seeds `seed ^ index`,
    /// micro-batched `batch` jobs at a time; returns the in-order
    /// receiver.
    fn submit(
        &self,
        jobs: Vec<(GrayImage, GrayImage)>,
        seed: u64,
        batch: usize,
        cancel: CancelToken,
    ) -> Result<ScheduledRx, PpError> {
        for (img, mask) in &jobs {
            for (what, side) in [("image", img), ("mask", mask)].map(|(w, i)| (w, i.width())) {
                if side != self.shared.image {
                    return Err(PpError::Shape {
                        what: format!("scheduled job {what} vs model image"),
                        expected: self.shared.image,
                        actual: side,
                    });
                }
            }
        }
        let total = jobs.len();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("scheduler state poisoned");
            if st.shutdown {
                return Err(PpError::Model("scheduler is shut down".into()));
            }
            st.queue.push_back(Submission {
                jobs: Arc::new(jobs),
                seed,
                batch: batch.max(1),
                cursor: 0,
                cancel,
                retired: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                tx,
            });
        }
        self.shared.cv.notify_all();
        Ok(ScheduledRx {
            rx,
            pending: BTreeMap::new(),
            next: 0,
            total,
        })
    }
}

/// In-order micro-batch delivery for one submission: workers may finish
/// out of order, so batches are buffered until their predecessor
/// arrived (dispatch is sequential per submission, so the dispatched
/// set is always a prefix and the reorder buffer always drains).
#[derive(Debug)]
struct ScheduledRx {
    rx: Receiver<SchedMsg>,
    pending: BTreeMap<usize, Vec<GrayImage>>,
    next: usize,
    total: usize,
}

impl Iterator for ScheduledRx {
    type Item = Result<(usize, Vec<GrayImage>), PpError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(samples) = self.pending.remove(&self.next) {
                let start = self.next;
                self.next += samples.len();
                return Some(Ok((start, samples)));
            }
            if self.next >= self.total {
                return None;
            }
            match self.rx.recv() {
                Ok(SchedMsg::Batch { start, samples }) => {
                    self.pending.insert(start, samples);
                }
                Ok(SchedMsg::Aborted(reason)) => {
                    // Poison: no further batches will be delivered.
                    self.total = self.next;
                    return Some(Err(PpError::Model(reason)));
                }
                // All senders gone: cancellation retired the
                // submission (clean early end) — or a worker died
                // mid-batch, which would leave a gap; report that.
                Err(_) => {
                    if self.pending.is_empty() {
                        return None;
                    }
                    self.total = self.next;
                    return Some(Err(PpError::Model(
                        "scheduler worker lost a dispatched micro-batch".into(),
                    )));
                }
            }
        }
    }
}

/// A [`Sampler`] that routes requests through a shared [`Scheduler`]
/// instead of spawning a private worker pool.
///
/// This is what a [`crate::Session`] with an attached scheduler runs
/// its rounds through; outputs are bit-identical to
/// [`crate::DiffusionSampler`] over the same model because per-job RNG
/// streams (`seed ^ index`) and in-order delivery are preserved and
/// micro-batch grouping never affects a job's arithmetic.
#[derive(Debug, Clone)]
pub struct ScheduledSampler {
    handle: SchedulerHandle,
    batch_size: usize,
}

impl ScheduledSampler {
    /// Wraps a scheduler handle; `batch_size` is the micro-batch
    /// granularity submissions are interleaved at (`0` = the whole
    /// request as one batch, which forfeits fairness).
    pub fn new(handle: SchedulerHandle, batch_size: usize) -> ScheduledSampler {
        ScheduledSampler { handle, batch_size }
    }
}

impl Sampler for ScheduledSampler {
    fn name(&self) -> &str {
        "diffusion-inpaint-scheduled"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        let stream = self.sample_stream(jobs, seed, &StreamOptions::default())?;
        let samples: Vec<RawSample> = stream.collect::<Result<_, _>>()?;
        if samples.len() != jobs.len() {
            return Err(PpError::Model(format!(
                "scheduler returned {} of {} samples",
                samples.len(),
                jobs.len()
            )));
        }
        Ok(samples)
    }

    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        if opts.cancel.is_cancelled() {
            return Ok(Box::new(std::iter::empty()));
        }
        let images: Vec<(GrayImage, GrayImage)> = jobs
            .iter()
            .map(|(l, m)| (GrayImage::from_layout(l), m.as_image().clone()))
            .collect();
        let micro = if self.batch_size == 0 {
            jobs.len().max(1)
        } else {
            self.batch_size
        };
        let rx = self
            .handle
            .submit(images, seed, micro, opts.cancel.clone())?;
        let templates: Vec<Arc<Layout>> = jobs.iter().map(|(t, _)| Arc::clone(t)).collect();
        let hook = opts.progress.clone();
        let total = jobs.len();
        let mut completed = 0usize;
        let iter = rx.flat_map(move |item| match item {
            Ok((start, samples)) => {
                completed += samples.len();
                if let Some(hook) = &hook {
                    hook(Progress { completed, total });
                }
                let batch_templates = templates[start..start + samples.len()].to_vec();
                samples
                    .into_iter()
                    .zip(batch_templates)
                    .map(|(raw, template)| Ok(RawSample { template, raw }))
                    .collect::<Vec<_>>()
            }
            Err(e) => vec![Err(e)],
        });
        Ok(Box::new(iter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_diffusion::DiffusionConfig;

    fn tiny_model() -> Arc<DiffusionModel> {
        Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 3))
    }

    fn jobs(n: usize) -> Vec<(GrayImage, GrayImage)> {
        (0..n)
            .map(|i| {
                let mut image = GrayImage::filled(16, 16, -1.0);
                for y in 0..16 {
                    image.set(i as u32 % 16, y, 1.0);
                }
                (image, GrayImage::filled(16, 16, 1.0))
            })
            .collect()
    }

    #[test]
    fn interleaved_submissions_match_solo_batches() {
        let model = tiny_model();
        let solo_a = model.sample_inpaint_batch_sized(&jobs(7), 5, 1, 0).unwrap();
        let solo_b = model.sample_inpaint_batch_sized(&jobs(5), 9, 1, 0).unwrap();
        let sched = Scheduler::new(Arc::clone(&model), 3);
        let rx_a = sched
            .handle()
            .submit(jobs(7), 5, 2, CancelToken::new())
            .unwrap();
        let rx_b = sched
            .handle()
            .submit(jobs(5), 9, 3, CancelToken::new())
            .unwrap();
        let collect = |rx: ScheduledRx| {
            let mut out = Vec::new();
            for item in rx {
                let (start, samples) = item.unwrap();
                assert_eq!(start, out.len(), "delivery out of job order");
                out.extend(samples);
            }
            out
        };
        // Consume on two threads so both streams drain while workers
        // interleave the submissions.
        let (got_a, got_b) = std::thread::scope(|s| {
            let ha = s.spawn(|| collect(rx_a));
            let got_b = collect(rx_b);
            (ha.join().unwrap(), got_b)
        });
        assert_eq!(got_a, solo_a);
        assert_eq!(got_b, solo_b);
    }

    #[test]
    fn cancellation_retires_a_submission_cleanly() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let cancel = CancelToken::new();
        let rx = sched
            .handle()
            .submit(jobs(32), 1, 1, cancel.clone())
            .unwrap();
        let mut seen = 0;
        for item in rx {
            let _ = item.expect("cancellation is not an error");
            seen += 1;
            cancel.cancel();
        }
        assert!(seen >= 1, "partial results must still be delivered");
        assert!(seen < 32, "cancellation failed to stop the submission");
    }

    #[test]
    fn shutdown_aborts_queued_submissions_with_an_error() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let rx = sched
            .handle()
            .submit(jobs(64), 1, 1, CancelToken::new())
            .unwrap();
        let handle = sched.handle();
        drop(sched);
        // Whatever was in flight may arrive; the tail must be a hard
        // error, never a silent truncation.
        let mut err = None;
        for item in rx {
            if let Err(e) = item {
                err = Some(e);
                break;
            }
        }
        assert!(err.is_some(), "shutdown must surface an error");
        // New submissions are rejected.
        assert!(handle.submit(jobs(1), 0, 1, CancelToken::new()).is_err());
    }

    /// Dropping a submission's stream must retire it: the pool moves
    /// on to later submissions instead of sampling into the void.
    #[test]
    fn dropped_stream_retires_its_submission() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let rx = sched
            .handle()
            .submit(jobs(64), 1, 1, CancelToken::new())
            .unwrap();
        drop(rx);
        // A fresh submission drains promptly because the abandoned one
        // is retired after at most one failed delivery.
        let rx2 = sched
            .handle()
            .submit(jobs(2), 3, 1, CancelToken::new())
            .unwrap();
        let delivered: usize = rx2.map(|item| item.unwrap().1.len()).sum();
        assert_eq!(delivered, 2);
    }

    #[test]
    fn submit_validates_shapes() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let bad = vec![(
            GrayImage::filled(8, 8, -1.0),
            GrayImage::filled(16, 16, 1.0),
        )];
        let err = sched
            .handle()
            .submit(bad, 0, 1, CancelToken::new())
            .unwrap_err();
        assert!(matches!(err, PpError::Shape { .. }), "wrong error: {err}");
    }
}
