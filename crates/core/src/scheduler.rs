//! The engine scheduler: many sessions' requests, one model, pluggable
//! QoS policies over continuously batched slot dispatch.
//!
//! A solo pipeline gives each generation round a private pool of
//! sampling workers ([`crate::DiffusionSampler`] spawns them per
//! request). When one [`crate::Engine`] serves many [`crate::Session`]s
//! that is the wrong shape: N concurrent rounds would fight over cores
//! with N×`threads` workers, and a long round would starve a short one.
//! The [`Scheduler`] instead owns a fixed pool of
//! [`pp_diffusion::InpaintWorker`]s bound to the engine's shared model
//! and **continuously batches** submissions at slot granularity: each
//! worker keeps a slot table ([`pp_diffusion::SlotFeed`]) of in-flight
//! jobs, each with its own DDIM step cursor, and between any two steps
//! it admits queued jobs — from *any* submission — into free slots. A
//! network pass packs whatever slots are live into one `[B, 3, H, W]`
//! tensor with per-slot timesteps, so a micro-batch is formed *across*
//! sessions at the moment capacity frees up (the way LLM serving
//! engines batch requests at token granularity) instead of one
//! submission monopolising a worker for a whole fixed batch. An
//! Interactive job arriving mid-flight therefore starts at the next
//! step boundary, not the next batch boundary.
//! [`SchedulerOptions::dispatch`] can restore the pre-slot dispatch
//! ([`DispatchMode::FixedBatch`]) for comparison — `sampling_bench`'s
//! `mixed_tenants` mode races the two.
//!
//! **Which** submissions fill free slots first is a [`SchedPolicy`]
//! decision, pluggable at build time
//! ([`crate::Engine::scheduler_with`]): the policy *ranks* the queue
//! ([`SchedPolicy::rank`], most-preferred first) and the dispatcher
//! walks the ranking, admitting up to each submission's micro-batch
//! width. Existing policies that only implement the legacy
//! [`SchedPolicy::pick`] keep working through a built-in shim (rank =
//! repeated pick), so custom policies from the QoS redesign need no
//! change.
//!
//! * [`RoundRobin`] (default) — strict rotation, every submission gets
//!   an equal share; admission order matches the pre-slot scheduler's
//!   dispatch order (a regression test in `tests/qos_scheduler.rs`
//!   pins the delivered results);
//! * [`WeightedFair`] — shares proportional to the submission's
//!   [`QosClass::weight`] (interactive 4 : batch 2 : best-effort 1);
//! * [`DeadlineFirst`] — earliest soft deadline first; submissions
//!   without deadlines fall back to the fair-share order among
//!   themselves.
//!
//! Every policy only reorders slot admission and the per-submission
//! reassembly below is unchanged, so per-session in-order delivery —
//! and therefore bit-identical libraries — holds under all of them:
//! a job's arithmetic never depends on which slots shared its passes
//! (see `pp_diffusion::slots`).
//!
//! **Admission control**: each [`QosClass`] has its own bounded
//! submission queue ([`QueueLimits`]). An overflowing submit returns
//! [`PpError::Rejected`] immediately instead of growing the queue
//! without bound, so a flood in one class can neither exhaust memory
//! nor push other classes into unbounded waiting.
//!
//! **Observability**: [`Scheduler::stats`] snapshots queue depths per
//! class, admission/rejection/completion counters, micro-batches and
//! samples dispatched per session, and cumulative wait/turnaround
//! times ([`SchedulerStats`]; schema documented in PERF.md).
//!
//! Determinism: a job's output depends only on `(template, mask,
//! seed ^ job_index)` — never on which worker ran it or how jobs were
//! grouped into network passes (`pp-diffusion` pins this with
//! `infer_batch_rows_match_solo`). Delivery is reassembled per
//! submission in job order before it reaches the round tail, whose
//! admission is order-exact. Scheduled sessions therefore produce
//! libraries bit-identical to solo pipelines, which
//! `tests/engine_sessions.rs` asserts.
//!
//! Cancellation is cooperative, as elsewhere: a cancelled submission is
//! retired at its next dispatch opportunity, finished micro-batches
//! still reach the consumer, and the stream ends early without error.
//! Dropping the [`Scheduler`] aborts still-queued submissions with an
//! explicit error (never a silently short stream) and joins the pool.
//!
//! **Supervision** (this is a *supervised* runtime, not a best-effort
//! pool): worker faults are contained at the smallest scope that can
//! absorb them.
//!
//! * A panic while running a micro-batch is caught with
//!   `catch_unwind`, converted to a typed
//!   [`PpError::WorkerPanic`] failure delivered to the *one*
//!   submission that was running, and the worker rebuilds its U-Net
//!   state and keeps serving other tenants
//!   ([`SchedulerStats::worker_panics`] counts these).
//! * A panic anywhere else in the worker loop (a buggy
//!   [`SchedPolicy`], say) kills that loop — but each worker thread is
//!   a supervisor that respawns its loop, recovering the poisoned
//!   state mutex on the way back in
//!   ([`SchedulerStats::workers_lost`] counts respawns). Every lock in
//!   this module recovers from poisoning, so `submit()`, `stats()` and
//!   shutdown all keep working after a fault.
//! * A *hard* deadline ([`StreamOptions::with_hard_deadline`]) is
//!   enforced at slot-admission points: a queued submission past its
//!   deadline is retired with [`PpError::DeadlineExceeded`]; samples
//!   already finished still reach the consumer.
//! * Under overload, best-effort work can be shed at admission
//!   ([`SchedulerOptions::shed_best_effort_above`]): when the p90 of
//!   recent queue waits crosses the threshold, new
//!   [`QosClass::BestEffort`] submissions are rejected instead of
//!   queued behind work they would only slow down.
//!
//! Fault *injection* for tests and benches lives in [`crate::fault`]:
//! a [`FaultPlan`] installed via [`SchedulerOptions::faults`] fires
//! deterministic panics/errors/stalls at chosen `(session, slot
//! ordinal)` points, where the slot ordinal is the job's index within
//! its submission; `tests/chaos_scheduler.rs` drives it.

use crate::error::PpError;
use crate::fault::{Fault, FaultPlan};
use crate::jobs::JobSet;
use crate::jobspec::QosClass;
use crate::pipeline::RawSample;
use crate::stages::{SampleStream, Sampler};
use crate::stream::{CancelToken, Progress, StreamOptions};
use pp_diffusion::{DiffusionModel, SlotFeed, SlotJob};
use pp_geometry::{GrayImage, Layout};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Scheduling policies
// ---------------------------------------------------------------------

/// What a [`SchedPolicy`] sees of one queued submission when picking
/// the next micro-batch.
#[derive(Debug, Clone, Copy)]
pub struct SchedView {
    /// The submission's QoS class.
    pub class: QosClass,
    /// Soft deadline, if the submitter set one.
    pub deadline: Option<Instant>,
    /// Micro-batches already dispatched for this submission.
    pub dispatched: u64,
    /// Class-weight-normalised virtual time: advanced by
    /// `4 / class weight` per dispatched micro-batch, and initialised
    /// to the queue's minimum pass at submit so a newcomer continues
    /// from the current share frontier instead of bursting until it
    /// "catches up" from zero (stride scheduling's virtual-time
    /// baseline).
    pub pass: u64,
    /// Jobs not yet dispatched.
    pub remaining: usize,
    /// The submitting session (one id per [`Scheduler::handle`]).
    pub session: u64,
}

/// The scheduling decision, extracted from the dispatch loop: given the
/// queue (oldest first), order the submissions free slots should be
/// filled from.
///
/// The scheduler owns everything else — slot admission, worker
/// assignment, in-order reassembly — so a policy can only change
/// *interleaving*, never per-session results. When a worker has free
/// slots it walks [`SchedPolicy::rank`]'s order, admitting up to each
/// submission's micro-batch width before moving to the next; admitted
/// submissions then move to the back of the queue (which is what makes
/// [`RoundRobin`]'s identity ranking a strict rotation).
///
/// Pre-continuous-batching policies only implemented
/// [`SchedPolicy::pick`] (choose one index). They still work unchanged:
/// the default [`SchedPolicy::rank`] builds a full ranking by calling
/// `pick` repeatedly on the shrinking remainder of the queue, which
/// reproduces the old "pick, dispatch, re-pick" dispatch order exactly.
/// Override `rank` directly to order the whole queue in one call.
///
/// Implementations must be deterministic in the queue contents: tests
/// replay schedules and assert bit-identical libraries.
pub trait SchedPolicy: Send {
    /// A short name for stats and reports.
    fn name(&self) -> &str;

    /// Index into `queue` (non-empty) of the most-preferred
    /// submission. Legacy single-pick interface; the dispatcher only
    /// calls [`SchedPolicy::rank`].
    fn pick(&mut self, queue: &[SchedView]) -> usize;

    /// Queue indices in admission order, most-preferred first. Free
    /// slots are offered to `queue[rank[0]]` first, then `rank[1]`,
    /// and so on.
    ///
    /// The default implementation ranks by repeated [`pick`] over the
    /// shrinking remainder (with out-of-range picks clamped), so a
    /// `pick`-only policy behaves exactly as it did under fixed
    /// micro-batch dispatch. The dispatcher tolerates sloppy output —
    /// out-of-range and duplicate indices are dropped, missing ones
    /// appended in queue order — a malformed ranking is a fairness
    /// bug, never a stall.
    ///
    /// [`pick`]: SchedPolicy::pick
    fn rank(&mut self, queue: &[SchedView]) -> Vec<usize> {
        let mut remaining: Vec<usize> = (0..queue.len()).collect();
        let mut order = Vec::with_capacity(queue.len());
        while !remaining.is_empty() {
            let views: Vec<SchedView> = remaining.iter().map(|&i| queue[i]).collect();
            let p = self.pick(&views).min(remaining.len() - 1);
            order.push(remaining.remove(p));
        }
        order
    }
}

/// Strict rotation: every active submission gets an equal micro-batch
/// share, regardless of class. The default policy, bit-identical to the
/// pre-policy scheduler's hardcoded rotation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl SchedPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn pick(&mut self, _queue: &[SchedView]) -> usize {
        0
    }

    fn rank(&mut self, queue: &[SchedView]) -> Vec<usize> {
        // Queue order *is* rotation order: admitted submissions move
        // to the back, so the identity ranking rotates.
        (0..queue.len()).collect()
    }
}

/// Class-weighted fair shares: the submission with the smallest
/// [`SchedView::pass`] runs next (stride scheduling over the
/// scheduler-maintained virtual time, which advances by `4 / weight`
/// per dispatch and starts at the queue's current frontier). Over any
/// window, classes receive micro-batches proportional to
/// interactive 4 : batch 2 : best-effort 1; within a class, equal
/// shares. Pass ties break toward the higher class weight (at equal
/// virtual time the better QoS class is served first — which is what
/// lets an Interactive arrival joining at the frontier preempt a
/// steady lower-class flood at the very next free slot), then toward
/// the oldest submission, so single-class workloads degrade to exact
/// round-robin and a late arrival never bursts past an established
/// equal-or-heavier share.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFair;

/// The stride-scheduling sort key: virtual time first, then stride
/// (`4 / weight` — smaller means heavier class) for pass ties.
fn stride_key(view: &SchedView) -> (u64, u32) {
    (
        view.pass,
        QosClass::Interactive.weight() / view.class.weight(),
    )
}

impl SchedPolicy for WeightedFair {
    fn name(&self) -> &str {
        "weighted-fair"
    }

    fn pick(&mut self, queue: &[SchedView]) -> usize {
        let mut best = 0;
        for (i, view) in queue.iter().enumerate().skip(1) {
            if stride_key(view) < stride_key(&queue[best]) {
                best = i;
            }
        }
        best
    }

    fn rank(&mut self, queue: &[SchedView]) -> Vec<usize> {
        // Stable sort by (pass, stride) == repeated min-extraction
        // with ties toward the heavier class then the oldest:
        // identical to the pick shim, in one pass.
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by_key(|&i| stride_key(&queue[i]));
        order
    }
}

/// Earliest-deadline-first over soft deadlines: while any queued
/// submission carries a deadline, the earliest one runs next (ties
/// toward the oldest); when none do, dispatch falls back to
/// [`WeightedFair`]'s class shares. Deadlines are advisory — a missed
/// one reorders nothing retroactively and aborts nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineFirst;

impl SchedPolicy for DeadlineFirst {
    fn name(&self) -> &str {
        "deadline-first"
    }

    fn pick(&mut self, queue: &[SchedView]) -> usize {
        let mut best: Option<(Instant, usize)> = None;
        for (i, view) in queue.iter().enumerate() {
            if let Some(d) = view.deadline {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
        }
        match best {
            Some((_, i)) => i,
            None => WeightedFair.pick(queue),
        }
    }

    fn rank(&mut self, queue: &[SchedView]) -> Vec<usize> {
        // Deadline holders first (earliest first, ties oldest — the
        // stable sort), then the rest in weighted-fair order: exactly
        // what repeated `pick` extraction produces.
        let mut dated: Vec<usize> = (0..queue.len())
            .filter(|&i| queue[i].deadline.is_some())
            .collect();
        dated.sort_by_key(|&i| queue[i].deadline);
        let mut rest: Vec<usize> = (0..queue.len())
            .filter(|&i| queue[i].deadline.is_none())
            .collect();
        rest.sort_by_key(|&i| stride_key(&queue[i]));
        dated.extend(rest);
        dated
    }
}

// ---------------------------------------------------------------------
// Admission control and observability
// ---------------------------------------------------------------------

/// Per-class bounds on queued submissions (scheduler) or concurrent
/// jobs (service front door). Deeper queues for lower classes: batch
/// and best-effort work is expected to wait, interactive work should be
/// rejected early rather than queued behind a backlog it cannot jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLimits {
    /// Bound for [`QosClass::Interactive`].
    pub interactive: usize,
    /// Bound for [`QosClass::Batch`].
    pub batch: usize,
    /// Bound for [`QosClass::BestEffort`].
    pub best_effort: usize,
}

impl Default for QueueLimits {
    fn default() -> Self {
        QueueLimits {
            interactive: 16,
            batch: 64,
            best_effort: 256,
        }
    }
}

impl QueueLimits {
    /// The same bound for every class.
    pub fn uniform(limit: usize) -> QueueLimits {
        QueueLimits {
            interactive: limit,
            batch: limit,
            best_effort: limit,
        }
    }

    /// The bound for `class`.
    pub fn limit(&self, class: QosClass) -> usize {
        match class {
            QosClass::Interactive => self.interactive,
            QosClass::Batch => self.batch,
            QosClass::BestEffort => self.best_effort,
        }
    }
}

/// One counter per QoS class (a [`SchedulerStats`] building block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// [`QosClass::Interactive`] count.
    pub interactive: u64,
    /// [`QosClass::Batch`] count.
    pub batch: u64,
    /// [`QosClass::BestEffort`] count.
    pub best_effort: u64,
}

impl ClassCounts {
    fn from_raw(raw: [u64; 3]) -> ClassCounts {
        ClassCounts {
            interactive: raw[0],
            batch: raw[1],
            best_effort: raw[2],
        }
    }

    /// The count for `class`.
    pub fn get(&self, class: QosClass) -> u64 {
        match class {
            QosClass::Interactive => self.interactive,
            QosClass::Batch => self.batch,
            QosClass::BestEffort => self.best_effort,
        }
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.interactive + self.batch + self.best_effort
    }
}

impl std::ops::AddAssign for ClassCounts {
    fn add_assign(&mut self, rhs: ClassCounts) {
        self.interactive += rhs.interactive;
        self.batch += rhs.batch;
        self.best_effort += rhs.best_effort;
    }
}

/// Dispatch counters for one session (one id per
/// [`Scheduler::handle`]; a session accumulates across its
/// submissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSched {
    /// The session id.
    pub session: u64,
    /// The class of the session's most recent submission.
    pub class: QosClass,
    /// Micro-batches dispatched for this session.
    pub micro_batches: u64,
    /// Jobs (samples) dispatched for this session.
    pub samples: u64,
}

/// A point-in-time snapshot of scheduler state and cumulative dispatch
/// counters (see PERF.md "Scheduling policies and admission control"
/// for the schema as it appears in `qos_sched` bench output).
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// The active [`SchedPolicy`]'s name.
    pub policy: String,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Submissions currently queued, per class.
    pub queued: ClassCounts,
    /// Submissions accepted since the scheduler started.
    pub admitted: ClassCounts,
    /// Submissions refused by admission control.
    pub rejected: ClassCounts,
    /// Submissions fully dispatched.
    pub completed: ClassCounts,
    /// Submissions retired early (cancellation or a dropped stream).
    pub abandoned: ClassCounts,
    /// Submissions retired at a hard deadline
    /// ([`PpError::DeadlineExceeded`]).
    pub timed_out: ClassCounts,
    /// Best-effort submissions refused by overload shedding
    /// ([`SchedulerOptions::shed_best_effort_above`]); also counted in
    /// [`SchedulerStats::rejected`].
    pub shed: u64,
    /// Micro-batch panics caught and converted to
    /// [`PpError::WorkerPanic`] (the worker survived and rebuilt its
    /// U-Net state).
    pub worker_panics: u64,
    /// Worker loops lost to an escaped panic and respawned by their
    /// supervising thread. Persistently non-zero growth means a buggy
    /// policy or a fault plan, not load.
    pub workers_lost: u64,
    /// Micro-batches dispatched in total. Under continuous batching a
    /// "micro-batch" is one submission's group of slots admitted in
    /// one refill — the unit the stride accounting and fairness tests
    /// count.
    pub micro_batches: u64,
    /// Jobs (samples) dispatched in total.
    pub samples: u64,
    /// Slot-occupancy numerator: per network step, how many slots of
    /// the stepping worker's table held live jobs. With
    /// [`SchedulerStats::slots_idle`] this gives the pool's packing
    /// efficiency — `filled / (filled + idle)` — the number continuous
    /// batching exists to push up.
    pub slots_filled: u64,
    /// Slot-occupancy denominator companion: per network step, how
    /// many slots of the stepping worker's table sat empty.
    pub slots_idle: u64,
    /// Network steps whose slot table mixed jobs from more than one
    /// submission — forward passes that fixed dispatch would have run
    /// separately (and narrower).
    pub batches_merged: u64,
    /// Cumulative submit → first-dispatch latency, microseconds.
    pub wait_micros: u64,
    /// Median submit → first-dispatch latency over the most recent
    /// submissions (the shedding signal's companion), microseconds.
    pub wait_p50_micros: u64,
    /// 90th-percentile submit → first-dispatch latency over the most
    /// recent submissions (the overload-shedding signal), microseconds.
    pub wait_p90_micros: u64,
    /// Per-class median submit → first-dispatch latency over each
    /// class's recent submissions, microseconds.
    pub wait_p50_micros_by_class: ClassCounts,
    /// Per-class 99th-percentile submit → first-dispatch latency over
    /// each class's recent submissions, microseconds — the
    /// `mixed_tenants` bench headline (Interactive p99 is the number
    /// slot-granular admission improves).
    pub wait_p99_micros_by_class: ClassCounts,
    /// Cumulative submit → retirement latency over all retired
    /// submissions — completed, abandoned and timed-out alike, so
    /// stragglers no longer skew the average (every retirement path
    /// records its terminal timestamp).
    pub turnaround_micros: u64,
    /// The raw recent-wait window behind [`wait_p50_micros`] /
    /// [`wait_p90_micros`] (at most the last 64 submit →
    /// first-dispatch waits, oldest first, microseconds). Carried in
    /// the snapshot so [`SchedulerStats::merge`] can recompute honest
    /// percentiles over the *combined* window instead of averaging
    /// per-replica percentiles.
    ///
    /// [`wait_p50_micros`]: SchedulerStats::wait_p50_micros
    /// [`wait_p90_micros`]: SchedulerStats::wait_p90_micros
    pub recent_wait_micros: Vec<u64>,
    /// Per-class recent-wait windows, indexed Interactive / Batch /
    /// BestEffort — the inputs to the `_by_class` percentile fields.
    pub recent_wait_micros_by_class: [Vec<u64>; 3],
    /// Per-session dispatch counters, ordered by session id.
    pub per_session: Vec<SessionSched>,
}

impl SchedulerStats {
    /// Aggregates snapshots from several schedulers (the fleet
    /// router's admission signal): counters are summed, the
    /// recent-wait windows are concatenated and every percentile is
    /// recomputed over the combined window (nearest-rank, matching the
    /// per-scheduler definition). `policy` is the shared name when all
    /// parts agree and `"mixed"` otherwise; `threads` is the pool
    /// total. Per-session counters with the same id are summed — ids
    /// are only unique *within* one scheduler, so fleet-level callers
    /// that need true attribution should keep the per-replica
    /// snapshots (as [`crate::FleetStats`] does).
    pub fn merge(parts: &[SchedulerStats]) -> SchedulerStats {
        let policy = match parts.first() {
            Some(first) if parts.iter().all(|p| p.policy == first.policy) => first.policy.clone(),
            Some(_) => "mixed".to_string(),
            None => String::new(),
        };
        let mut merged = SchedulerStats {
            policy,
            ..SchedulerStats::default()
        };
        let mut per_session: BTreeMap<u64, SessionSched> = BTreeMap::new();
        for part in parts {
            merged.threads += part.threads;
            merged.queued += part.queued;
            merged.admitted += part.admitted;
            merged.rejected += part.rejected;
            merged.completed += part.completed;
            merged.abandoned += part.abandoned;
            merged.timed_out += part.timed_out;
            merged.shed += part.shed;
            merged.worker_panics += part.worker_panics;
            merged.workers_lost += part.workers_lost;
            merged.micro_batches += part.micro_batches;
            merged.samples += part.samples;
            merged.slots_filled += part.slots_filled;
            merged.slots_idle += part.slots_idle;
            merged.batches_merged += part.batches_merged;
            merged.wait_micros += part.wait_micros;
            merged.turnaround_micros += part.turnaround_micros;
            merged
                .recent_wait_micros
                .extend_from_slice(&part.recent_wait_micros);
            for (ring, other) in merged
                .recent_wait_micros_by_class
                .iter_mut()
                .zip(&part.recent_wait_micros_by_class)
            {
                ring.extend_from_slice(other);
            }
            for s in &part.per_session {
                per_session
                    .entry(s.session)
                    .and_modify(|acc| {
                        acc.micro_batches += s.micro_batches;
                        acc.samples += s.samples;
                    })
                    .or_insert(*s);
            }
        }
        merged.wait_p50_micros = percentile_of(&merged.recent_wait_micros, 50);
        merged.wait_p90_micros = percentile_of(&merged.recent_wait_micros, 90);
        merged.wait_p50_micros_by_class = ClassCounts::from_raw([
            percentile_of(&merged.recent_wait_micros_by_class[0], 50),
            percentile_of(&merged.recent_wait_micros_by_class[1], 50),
            percentile_of(&merged.recent_wait_micros_by_class[2], 50),
        ]);
        merged.wait_p99_micros_by_class = ClassCounts::from_raw([
            percentile_of(&merged.recent_wait_micros_by_class[0], 99),
            percentile_of(&merged.recent_wait_micros_by_class[1], 99),
            percentile_of(&merged.recent_wait_micros_by_class[2], 99),
        ]);
        merged.per_session = per_session.into_values().collect();
        merged
    }
}

/// How workers turn queued submissions into network passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Continuous batching (the default): a worker admits jobs from
    /// *any* queued submission into free slots of its in-flight DDIM
    /// step loop, at step granularity. Micro-batches form across
    /// sessions the moment capacity frees up; per-job results are
    /// bit-identical to every other mode because a job's arithmetic
    /// never depends on its batch neighbours.
    #[default]
    Continuous,
    /// The pre-slot dispatch, kept as an in-tree baseline and
    /// migration escape hatch: a worker only refills an *empty* slot
    /// table, and only from the single top-ranked submission — one
    /// fixed micro-batch at a time, run to completion.
    /// `sampling_bench`'s `mixed_tenants` mode races this against
    /// [`DispatchMode::Continuous`].
    FixedBatch,
}

/// Build-time scheduler configuration: the [`SchedPolicy`] and the
/// per-class admission bounds. `Default` is [`RoundRobin`] with
/// [`QueueLimits::default`] under [`DispatchMode::Continuous`].
pub struct SchedulerOptions {
    policy: Box<dyn SchedPolicy>,
    limits: QueueLimits,
    faults: FaultPlan,
    shed_wait: Option<Duration>,
    dispatch: DispatchMode,
    slot_capacity: usize,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            policy: Box::new(RoundRobin),
            limits: QueueLimits::default(),
            faults: FaultPlan::new(),
            shed_wait: None,
            dispatch: DispatchMode::default(),
            slot_capacity: 0,
        }
    }
}

impl std::fmt::Debug for SchedulerOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerOptions")
            .field("policy", &self.policy.name())
            .field("limits", &self.limits)
            .field("faults", &self.faults.remaining())
            .field("shed_wait", &self.shed_wait)
            .field("dispatch", &self.dispatch)
            .field("slot_capacity", &self.slot_capacity)
            .finish()
    }
}

impl SchedulerOptions {
    /// Default options ([`RoundRobin`], default limits).
    pub fn new() -> SchedulerOptions {
        SchedulerOptions::default()
    }

    /// Replaces the scheduling policy.
    pub fn policy(mut self, policy: impl SchedPolicy + 'static) -> SchedulerOptions {
        self.policy = Box::new(policy);
        self
    }

    /// Replaces the per-class admission bounds.
    pub fn limits(mut self, limits: QueueLimits) -> SchedulerOptions {
        self.limits = limits;
        self
    }

    /// Installs a deterministic [`FaultPlan`] consulted at every slot
    /// admission — the chaos-testing hook (see [`crate::fault`]).
    /// Empty plans (the default) cost one branch per admission.
    pub fn faults(mut self, plan: FaultPlan) -> SchedulerOptions {
        self.faults = plan;
        self
    }

    /// Selects the [`DispatchMode`] (default
    /// [`DispatchMode::Continuous`]).
    pub fn dispatch(mut self, mode: DispatchMode) -> SchedulerOptions {
        self.dispatch = mode;
        self
    }

    /// Overrides the per-worker slot-table capacity under
    /// [`DispatchMode::Continuous`]. `0` (the default) sizes the table
    /// automatically to 1.5× the largest queued micro-batch width, so
    /// one submission's full micro-batch plus headroom for a newly
    /// arrived tenant fit in a single network pass. Ignored under
    /// [`DispatchMode::FixedBatch`].
    pub fn slot_capacity(mut self, slots: usize) -> SchedulerOptions {
        self.slot_capacity = slots;
        self
    }

    /// Enables overload shedding: when the 90th-percentile queue wait
    /// over recent submissions exceeds `threshold`, new
    /// [`QosClass::BestEffort`] submissions are rejected at admission
    /// ([`PpError::Rejected`], counted in [`SchedulerStats::shed`])
    /// instead of queued. Higher classes are never shed — they have
    /// admission bounds of their own.
    pub fn shed_best_effort_above(mut self, threshold: Duration) -> SchedulerOptions {
        self.shed_wait = Some(threshold);
        self
    }
}

// ---------------------------------------------------------------------
// Queue plumbing
// ---------------------------------------------------------------------

/// One delivery from a worker to a submission's consumer.
enum SchedMsg {
    /// `samples[i]` answers job `start + i` of the submission.
    Batch {
        start: usize,
        samples: Vec<GrayImage>,
    },
    /// The scheduler shut down, a worker failed or panicked, or a hard
    /// deadline passed before this submission finished; the stream
    /// surfaces the typed error so the service can classify it
    /// (transient → retry, deadline → `TimedOut`).
    Aborted(PpError),
}

/// A queued request: shared job images plus a dispatch cursor.
struct Submission {
    /// Scheduler-unique id for slot tagging (session ids are
    /// per-handle and a handle submits many times). Masked to 32 bits
    /// — the tag packs `(uid << 32) | job index`.
    uid: u64,
    jobs: Arc<Vec<(GrayImage, GrayImage)>>,
    seed: u64,
    batch: usize,
    cursor: usize,
    dispatched: u64,
    /// Stride-scheduling virtual time (see [`SchedView::pass`]).
    pass: u64,
    /// Slots admitted since `pass` last advanced: every `batch` slots
    /// of work costs one class stride, so slot-granular admission
    /// charges the same virtual time per job as fixed dispatch did.
    credits: usize,
    session: u64,
    class: QosClass,
    deadline: Option<Instant>,
    /// When set, passing `deadline` retires the submission with
    /// [`PpError::DeadlineExceeded`] instead of merely reordering it.
    hard_deadline: bool,
    submitted_at: Instant,
    cancel: CancelToken,
    /// Internal retire flag, distinct from the caller's `cancel`
    /// token (which may be shared across rounds): set by workers when
    /// delivery fails or the submission is poisoned, so the dispatcher
    /// stops feeding a request nobody is listening to — and evicts its
    /// already-admitted slots instead of stepping them to completion.
    retired: Arc<std::sync::atomic::AtomicBool>,
    /// Slots of this submission currently admitted across *all*
    /// workers' tables. Hard-deadline aborts wait for this to reach 0
    /// so in-flight samples (which beat the clock) deliver before the
    /// stream is truncated by the typed error.
    inflight: Arc<AtomicUsize>,
    tx: Sender<SchedMsg>,
}

/// How many recent first-dispatch waits feed the percentile windows
/// behind [`SchedulerStats::wait_p90_micros`], the per-class p99s and
/// overload shedding.
const WAIT_WINDOW: usize = 64;

/// Cumulative dispatch counters, updated under the state lock.
#[derive(Default)]
struct StatsInner {
    admitted: [u64; 3],
    rejected: [u64; 3],
    completed: [u64; 3],
    abandoned: [u64; 3],
    timed_out: [u64; 3],
    shed: u64,
    micro_batches: u64,
    samples: u64,
    wait_micros: u64,
    turnaround_micros: u64,
    /// Ring buffer of the last [`WAIT_WINDOW`] submit → first-dispatch
    /// waits (microseconds): the shedding signal.
    recent_waits: VecDeque<u64>,
    /// Per-class rings of the same waits, indexed by
    /// [`QosClass::index`]: the `mixed_tenants` latency signal.
    recent_class_waits: [VecDeque<u64>; 3],
    per_session: BTreeMap<u64, (QosClass, u64, u64)>,
}

/// The p-th percentile (nearest-rank) of a wait window, 0 when empty.
/// Generic over the container so both the live `VecDeque` rings and
/// the `Vec` windows carried by [`SchedulerStats::merge`] share one
/// definition.
fn percentile_of<'a, I>(window: I, p: u64) -> u64
where
    I: IntoIterator<Item = &'a u64>,
{
    let mut sorted: Vec<u64> = window.into_iter().copied().collect();
    if sorted.is_empty() {
        return 0;
    }
    sorted.sort_unstable();
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

impl StatsInner {
    /// The p-th percentile (nearest-rank) of the recent-wait window,
    /// 0 when the window is empty.
    fn wait_percentile(&self, p: u64) -> u64 {
        percentile_of(&self.recent_waits, p)
    }

    /// Per-class nearest-rank percentiles of the recent-wait windows.
    fn class_wait_percentile(&self, p: u64) -> ClassCounts {
        ClassCounts::from_raw([
            percentile_of(&self.recent_class_waits[0], p),
            percentile_of(&self.recent_class_waits[1], p),
            percentile_of(&self.recent_class_waits[2], p),
        ])
    }

    /// Records a submit → first-dispatch wait into the cumulative sum
    /// and both percentile windows.
    fn record_wait(&mut self, wait: u64, class: QosClass) {
        self.wait_micros += wait;
        if self.recent_waits.len() == WAIT_WINDOW {
            self.recent_waits.pop_front();
        }
        self.recent_waits.push_back(wait);
        let ring = &mut self.recent_class_waits[class.index()];
        if ring.len() == WAIT_WINDOW {
            ring.pop_front();
        }
        ring.push_back(wait);
    }
}

struct SchedState {
    queue: VecDeque<Submission>,
    policy: Box<dyn SchedPolicy>,
    stats: StatsInner,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
    image: u32,
    threads: usize,
    limits: QueueLimits,
    next_session: AtomicU64,
    /// Slot-tag uid allocator (see [`Submission::uid`]).
    next_uid: AtomicU64,
    /// Worker panics caught and contained (worker survived and
    /// rebuilt), including synthesized [`Fault::PanicAt`] injections.
    worker_panics: AtomicU64,
    /// Worker loops lost to an escaped panic and respawned.
    workers_lost: AtomicU64,
    /// Worker threads still serving; 0 means the pool is wedged and
    /// submissions would hang forever, so `submit` refuses them.
    workers_alive: AtomicUsize,
    /// Chaos hook: `has_faults` keeps the happy path to one branch per
    /// slot admission (no lock touch when no plan was installed).
    has_faults: bool,
    faults: Mutex<FaultPlan>,
    shed_wait: Option<Duration>,
    dispatch: DispatchMode,
    /// Slot-table capacity override (0 = auto, see
    /// [`SchedulerOptions::slot_capacity`]).
    slot_capacity: usize,
    /// Σ live slots over all network steps (see
    /// [`SchedulerStats::slots_filled`]).
    slots_filled: AtomicU64,
    /// Σ empty slots over all network steps.
    slots_idle: AtomicU64,
    /// Steps whose table mixed submissions.
    batches_merged: AtomicU64,
}

/// Locks the scheduler state, recovering from poisoning: every mutation
/// in this module is counter/queue bookkeeping that stays coherent at
/// any interleaving point, so a panic between lock and unlock (a buggy
/// policy, an injected fault) must not condemn `submit()`, `stats()`
/// and shutdown forever — that would turn one tenant's fault into a
/// whole-service outage.
fn lock_state(shared: &Shared) -> MutexGuard<'_, SchedState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Purges dead submissions from the queue: cancelled and retired ones
/// retire as `abandoned` (dropping the sender ends the stream — cleanly
/// for cancellation, which is not an error), expired hard deadlines as
/// `timed_out` with a typed abort. Slots already admitted keep running
/// and deliver — cancellation and deadlines act on *queued* work, like
/// the fixed dispatcher's between-batch enforcement points. Every
/// retirement path records its terminal timestamp into
/// `turnaround_micros`, so abandoned and timed-out stragglers no longer
/// vanish from turnaround accounting (they used to be recorded only on
/// completion).
fn purge(st: &mut SchedState) {
    let mut i = 0;
    while i < st.queue.len() {
        let sub = &st.queue[i];
        if sub.cancel.is_cancelled() || sub.retired.load(Ordering::Relaxed) {
            st.stats.abandoned[sub.class.index()] += 1;
            st.stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            st.queue.remove(i);
        } else if sub.hard_deadline
            && sub.deadline.is_some_and(|d| Instant::now() > d)
            // Defer the abort while slots are in flight: their samples
            // beat the clock and must reach the consumer before the
            // stream is truncated by the typed error. Admission below
            // skips expired submissions, so this drains promptly.
            && sub.inflight.load(Ordering::Relaxed) == 0
        {
            // Hard-deadline enforcement: cooperative, at slot-admission
            // points. Samples already delivered reached the consumer
            // (partial results survive); the stream ends with the typed
            // error so the service resolves to `TimedOut`.
            let late_by = sub
                .deadline
                .map(|d| Instant::now().saturating_duration_since(d))
                .unwrap_or_default();
            let _ = sub
                .tx
                .send(SchedMsg::Aborted(PpError::DeadlineExceeded { late_by }));
            st.stats.timed_out[sub.class.index()] += 1;
            st.stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            st.queue.remove(i);
        } else {
            i += 1;
        }
    }
}

/// What the policy sees of one queued submission.
fn views_of(queue: &VecDeque<Submission>) -> Vec<SchedView> {
    queue
        .iter()
        .map(|sub| SchedView {
            class: sub.class,
            deadline: sub.deadline,
            dispatched: sub.dispatched,
            pass: sub.pass,
            remaining: sub.jobs.len() - sub.cursor,
            session: sub.session,
        })
        .collect()
}

/// Sanitises a policy ranking: out-of-range and duplicate indices are
/// dropped, missing ones appended in queue order. A malformed ranking
/// is a fairness bug, never a stall or a panic.
fn normalize_ranking(ranking: Vec<usize>, len: usize) -> Vec<usize> {
    let mut seen = vec![false; len];
    let mut order = Vec::with_capacity(len);
    for i in ranking {
        if i < len && !std::mem::replace(&mut seen[i], true) {
            order.push(i);
        }
    }
    for (i, ranked) in seen.into_iter().enumerate() {
        if !ranked {
            order.push(i);
        }
    }
    order
}

/// Renders a `catch_unwind` payload for [`PpError::WorkerPanic`]
/// (panics carry `&str` or `String` in practice; anything else gets a
/// placeholder rather than being dropped).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Continuous dispatch: the worker-side slot feed
// ---------------------------------------------------------------------

/// Delivery route for one submission with slots in a worker's table.
struct Route {
    tx: Sender<SchedMsg>,
    retired: Arc<std::sync::atomic::AtomicBool>,
    /// The submission's cross-worker in-flight slot count (see
    /// [`Submission::inflight`]).
    sub_inflight: Arc<AtomicUsize>,
    /// Slots of this submission currently in this worker's table.
    inflight: usize,
}

/// The scheduler's side of [`pp_diffusion::SlotFeed`], one per worker
/// loop entry: `refill` *is* the dispatcher — purge, policy ranking,
/// slot admission, fault injection and dispatch stats all happen there
/// under the state lock — while `complete`/`evict` route finished
/// samples back to their submission's stream without touching it.
struct SchedFeed {
    shared: Arc<Shared>,
    /// Routes for submissions with slots in this worker's table,
    /// keyed by [`Submission::uid`].
    routes: BTreeMap<u64, Route>,
    /// Slot-table capacity as of the last refill (the denominator for
    /// idle-slot accounting).
    capacity: usize,
    /// A panic that unwound out of [`SchedPolicy::rank`] during
    /// refill, parked so in-flight slots drain before the worker loop
    /// re-raises it toward its supervisor.
    policy_panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Packs a slot tag from a submission uid (32 bits) and a job index.
fn slot_tag(uid: u64, index: usize) -> u64 {
    (uid << 32) | index as u64
}

impl SchedFeed {
    fn new(shared: Arc<Shared>) -> SchedFeed {
        SchedFeed {
            shared,
            routes: BTreeMap::new(),
            capacity: 0,
            policy_panic: None,
        }
    }

    /// Releases one slot of `uid`, dropping the route (and its sender
    /// clone) when it was the last — which is what lets a fully
    /// retired submission's stream disconnect.
    fn release(&mut self, uid: u64) {
        if let Some(route) = self.routes.get_mut(&uid) {
            route.sub_inflight.fetch_sub(1, Ordering::Relaxed);
            route.inflight -= 1;
            if route.inflight == 0 {
                self.routes.remove(&uid);
            }
        }
    }

    /// Aborts every submission with slots in this worker's table —
    /// the worker-level failure path, where an unwind destroyed the
    /// whole slot loop and per-slot attribution with it.
    fn abort_inflight(&mut self, err: impl Fn() -> PpError) {
        for route in std::mem::take(&mut self.routes).into_values() {
            let _ = route.tx.send(SchedMsg::Aborted(err()));
            route.retired.store(true, Ordering::Relaxed);
            // The table is gone with the unwound slot loop: hand the
            // slots back so deferred hard-deadline purging never waits
            // on slots that no longer exist.
            route
                .sub_inflight
                .fetch_sub(route.inflight, Ordering::Relaxed);
        }
    }

    /// The dispatcher proper: purge the queue, rank it, fill free
    /// slots in ranking order. Blocks on the condvar only when this
    /// worker's table is empty (`active == 0`) and nothing was
    /// admitted — with slots in flight it returns immediately so the
    /// step loop keeps moving.
    fn refill_inner(&mut self, active: usize) -> Vec<SlotJob> {
        let mut stall: Option<Duration> = None;
        let shared = Arc::clone(&self.shared);
        let out = {
            let mut st = lock_state(&shared);
            loop {
                purge(&mut st);
                if st.shutdown {
                    break Vec::new();
                }
                let jobs = self.admit(&mut st, active, &mut stall);
                if !jobs.is_empty() || active > 0 {
                    break jobs;
                }
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // An injected stall models a slow model pass, not a wedged
        // scheduler: sleep outside the state lock.
        if let Some(d) = stall {
            std::thread::sleep(d);
        }
        out
    }

    /// One admission pass over the ranked queue. Returns the slots to
    /// add to this worker's table; updates cursors, stride accounting,
    /// routes and dispatch stats; retires submissions hit by injected
    /// faults; rotates admitted submissions to the back of the queue.
    fn admit(
        &mut self,
        st: &mut SchedState,
        active: usize,
        stall: &mut Option<Duration>,
    ) -> Vec<SlotJob> {
        if st.queue.is_empty() {
            return Vec::new();
        }
        let fixed = self.shared.dispatch == DispatchMode::FixedBatch;
        if fixed && active > 0 {
            // Pre-slot dispatch semantics: a worker only takes new
            // work once its table fully drained.
            return Vec::new();
        }
        let max_batch = st.queue.iter().map(|s| s.batch).max().unwrap_or(1);
        let capacity = if fixed {
            max_batch
        } else if self.shared.slot_capacity > 0 {
            self.shared.slot_capacity
        } else {
            // Auto sizing: the widest queued micro-batch plus 50%
            // headroom, so a newly arrived tenant can join the next
            // network pass instead of waiting for a slot lifetime.
            max_batch + max_batch / 2
        };
        self.capacity = capacity;
        let mut free = capacity.saturating_sub(active);
        if free == 0 {
            return Vec::new();
        }
        if !fixed && active == 0 {
            // Admission-side de-aligner: a cold table filled in one
            // refill with uniform-length jobs retires every slot at
            // the same boundary forever — the table stays
            // cohort-aligned and a late tenant waits a full slot
            // lifetime for its first dispatch. Capping the first
            // refill at half capacity splits the cold cohort in two:
            // the remainder is admitted at the very next step boundary
            // (refill runs after every step), one step out of phase,
            // so slots free up twice per lifetime from then on. Costs
            // at most one half-idle step per cold start; FixedBatch
            // keeps its run-to-completion semantics.
            free = free.min(capacity.div_ceil(2)).max(1);
        }
        let views = views_of(&st.queue);
        let ranking = normalize_ranking(st.policy.rank(&views), st.queue.len());
        let st = &mut *st;
        let queue = &mut st.queue;
        let stats = &mut st.stats;
        let mut out = Vec::new();
        // Post-walk queue surgery, keyed by uid: submissions that got
        // slots rotate to the back (in admission order — what makes
        // the identity ranking a strict rotation), fault-aborted ones
        // leave as abandoned, fully dispatched ones as completed.
        let mut admitted_order: Vec<u64> = Vec::new();
        let mut aborted: Vec<u64> = Vec::new();
        for qi in ranking {
            if free == 0 {
                break;
            }
            let sub = &mut queue[qi];
            if sub.hard_deadline && sub.deadline.is_some_and(|d| Instant::now() > d) {
                // Expired but still draining in-flight slots (purge
                // defers its abort): admit nothing more from it.
                continue;
            }
            let my_inflight = self.routes.get(&sub.uid).map_or(0, |r| r.inflight);
            // Per-worker share: one submission may hold at most its
            // micro-batch width in any single worker's table —
            // preserving the fixed dispatcher's concurrency bound of
            // `batch × workers` jobs in flight per submission.
            let allow = if fixed && !admitted_order.is_empty() {
                0 // fixed mode admits from the top-ranked submission only
            } else {
                sub.batch
                    .saturating_sub(my_inflight)
                    .min(sub.jobs.len() - sub.cursor)
                    .min(free)
            };
            if allow == 0 {
                continue;
            }
            let mut n = 0;
            let mut abort: Option<PpError> = None;
            while n < allow {
                let index = sub.cursor + n;
                // Chaos hook, now keyed on (session, slot ordinal) =
                // the job's index within its submission. Faults fire
                // at admission, before any DDIM compute: a synthesized
                // panic/error aborts only this submission — slots of
                // co-resident tenants in the same table are untouched,
                // which is the isolation continuous batching must keep.
                if self.shared.has_faults {
                    let fault = self
                        .shared
                        .faults
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take(sub.session, index as u64);
                    match fault {
                        Some(Fault::PanicAt { .. }) => {
                            self.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                            abort = Some(PpError::WorkerPanic {
                                detail: format!(
                                    "injected fault: worker panic (session {}, slot {})",
                                    sub.session, index
                                ),
                            });
                            break;
                        }
                        Some(Fault::ErrAt { .. }) => {
                            abort = Some(PpError::Io(std::io::Error::new(
                                std::io::ErrorKind::Interrupted,
                                format!(
                                    "injected transient i/o fault (session {}, slot {})",
                                    sub.session, index
                                ),
                            )));
                            break;
                        }
                        Some(Fault::StallFor { duration, .. }) => {
                            *stall = Some(stall.map_or(duration, |s| s.max(duration)));
                        }
                        None => {}
                    }
                }
                out.push(SlotJob {
                    tag: slot_tag(sub.uid, index),
                    jobs: Arc::clone(&sub.jobs),
                    index,
                    seed: sub.seed ^ index as u64,
                });
                n += 1;
            }
            if n > 0 {
                if sub.dispatched == 0 {
                    let wait = sub.submitted_at.elapsed().as_micros() as u64;
                    stats.record_wait(wait, sub.class);
                }
                sub.dispatched += 1;
                sub.cursor += n;
                // Advance virtual time by the class stride (4 /
                // weight) once per micro-batch worth of slots, so
                // slot-granular admission charges the same pass per
                // job as fixed dispatch did.
                sub.credits += n;
                let stride = u64::from(QosClass::Interactive.weight() / sub.class.weight());
                while sub.credits >= sub.batch {
                    sub.credits -= sub.batch;
                    sub.pass += stride;
                }
                stats.micro_batches += 1;
                stats.samples += n as u64;
                let entry = stats
                    .per_session
                    .entry(sub.session)
                    .or_insert((sub.class, 0, 0));
                entry.0 = sub.class;
                entry.1 += 1;
                entry.2 += n as u64;
                let route = self.routes.entry(sub.uid).or_insert_with(|| Route {
                    tx: sub.tx.clone(),
                    retired: Arc::clone(&sub.retired),
                    sub_inflight: Arc::clone(&sub.inflight),
                    inflight: 0,
                });
                route.inflight += n;
                sub.inflight.fetch_add(n, Ordering::Relaxed);
                free -= n;
                admitted_order.push(sub.uid);
            }
            if let Some(err) = abort {
                // Slots admitted before the fault point (this refill
                // or earlier) still run and deliver; everything from
                // the fault on is gone. The consumer sees the typed
                // abort; `purge`-style accounting happens in the
                // surgery below, so counters land before this call
                // returns.
                let _ = sub.tx.send(SchedMsg::Aborted(err));
                sub.retired.store(true, Ordering::Relaxed);
                aborted.push(sub.uid);
            }
        }
        if admitted_order.is_empty() && aborted.is_empty() {
            return out;
        }
        let mut rotated: BTreeMap<u64, Submission> = BTreeMap::new();
        let mut kept: VecDeque<Submission> = VecDeque::with_capacity(queue.len());
        for sub in queue.drain(..) {
            if aborted.contains(&sub.uid) {
                stats.abandoned[sub.class.index()] += 1;
                stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            } else if sub.cursor >= sub.jobs.len() {
                stats.completed[sub.class.index()] += 1;
                stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            } else if admitted_order.contains(&sub.uid) {
                rotated.insert(sub.uid, sub);
            } else {
                kept.push_back(sub);
            }
        }
        for uid in &admitted_order {
            if let Some(sub) = rotated.remove(uid) {
                kept.push_back(sub);
            }
        }
        *queue = kept;
        out
    }
}

impl SlotFeed for SchedFeed {
    fn refill(&mut self, active: usize) -> Vec<SlotJob> {
        if self.policy_panic.is_some() {
            // A panicked policy cannot rank: stop admitting, let the
            // slot loop drain what is in flight, then the worker loop
            // re-raises toward its supervisor.
            return Vec::new();
        }
        match catch_unwind(AssertUnwindSafe(|| self.refill_inner(active))) {
            Ok(jobs) => jobs,
            Err(payload) => {
                self.policy_panic = Some(payload);
                Vec::new()
            }
        }
    }

    fn complete(&mut self, tag: u64, sample: GrayImage) {
        let uid = tag >> 32;
        let index = (tag & 0xffff_ffff) as usize;
        if let Some(route) = self.routes.get_mut(&uid) {
            let delivered = route
                .tx
                .send(SchedMsg::Batch {
                    start: index,
                    samples: vec![sample],
                })
                .is_ok();
            if !delivered {
                // The consumer dropped the stream: retire the
                // submission so the dispatcher stops sampling into
                // the void (the caller's cancel token is left alone —
                // it may be shared across rounds).
                route.retired.store(true, Ordering::Relaxed);
            }
        }
        self.release(uid);
    }

    fn evict(&mut self, tag: u64) -> bool {
        let uid = tag >> 32;
        // Only retired submissions are evicted mid-flight (delivery
        // already failed, or a fault poisoned them). Cancelled and
        // deadline-expired submissions keep their admitted slots to
        // completion — evicting those would strand already-delivered
        // out-of-order samples in the consumer's reorder buffer.
        let retired = self
            .routes
            .get(&uid)
            .is_none_or(|route| route.retired.load(Ordering::Relaxed));
        if retired {
            self.release(uid);
        }
        retired
    }

    fn on_step(&mut self, active: usize) {
        self.shared
            .slots_filled
            .fetch_add(active as u64, Ordering::Relaxed);
        self.shared.slots_idle.fetch_add(
            self.capacity.saturating_sub(active) as u64,
            Ordering::Relaxed,
        );
        if self.routes.len() > 1 {
            // This pass packs jobs from >1 submission: a batch the
            // fixed dispatcher would have run as separate (narrower)
            // passes.
            self.shared.batches_merged.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, model: &Arc<DiffusionModel>) {
    let mut worker = model.worker();
    loop {
        let mut feed = SchedFeed::new(Arc::clone(shared));
        // Panic isolation: a panic inside the model is contained to
        // the submissions whose slots were in this worker's table —
        // converted to typed aborts while the worker rebuilds its
        // U-Net scratch state and keeps serving everyone else.
        // (Injected faults never reach this path: they are synthesized
        // at slot admission, poisoning one slot's submission without
        // unwinding the shared step loop.)
        let outcome = catch_unwind(AssertUnwindSafe(|| worker.run_slots(&mut feed)));
        match outcome {
            Ok(Ok(())) => match feed.policy_panic.take() {
                // A policy panic is a scheduler bug, not a model
                // fault: re-raise it so the supervisor counts a lost
                // worker loop and respawns.
                Some(payload) => std::panic::resume_unwind(payload),
                None => return, // clean shutdown
            },
            // Shapes are validated at submit time, so a model error is
            // a defensive path; consumers still see a hard typed error
            // rather than silently short streams.
            Ok(Err(e)) => {
                let detail = format!("scheduler worker failed: {e}");
                feed.abort_inflight(|| PpError::Model(detail.clone()));
            }
            Err(payload) => {
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                // The worker's U-Net scratch state is suspect after an
                // unwind through it: rebuild from the shared model.
                worker = model.worker();
                let detail = panic_detail(payload);
                feed.abort_inflight(|| PpError::WorkerPanic {
                    detail: detail.clone(),
                });
            }
        }
    }
}

/// Upper bound on worker-loop respawns per thread: far above anything a
/// fault plan produces, low enough that a deterministically crashing
/// loop (a policy that panics on every pick) cannot spin forever.
const MAX_RESPAWNS: u64 = 64;

/// The supervisor each worker thread actually runs: re-enters
/// [`worker_loop`] after an *escaped* panic (one that unwound outside
/// the per-micro-batch `catch_unwind` — a buggy policy, say), counting
/// each loss in [`SchedulerStats::workers_lost`]. When a thread
/// exhausts its respawn budget it retires; when the *last* thread
/// retires, queued submissions are aborted and `submit` starts
/// refusing, so nothing hangs on a pool that no longer exists.
fn supervise(shared: Arc<Shared>, model: Arc<DiffusionModel>) {
    let mut respawns = 0u64;
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, &model))).is_ok() {
            return; // clean shutdown
        }
        shared.workers_lost.fetch_add(1, Ordering::Relaxed);
        respawns += 1;
        if respawns > MAX_RESPAWNS {
            break;
        }
        // Let any co-panicking siblings clear the state before the
        // loop re-enters it.
        std::thread::sleep(Duration::from_millis(1));
    }
    if shared.workers_alive.fetch_sub(1, Ordering::SeqCst) == 1 {
        // Last worker gone: nobody will ever dispatch again. Abort
        // queued submissions rather than letting consumers block on a
        // recv that cannot complete.
        let mut st = lock_state(&shared);
        let orphans: Vec<Submission> = st.queue.drain(..).collect();
        for sub in orphans {
            st.stats.abandoned[sub.class.index()] += 1;
            st.stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            let _ = sub.tx.send(SchedMsg::Aborted(PpError::Model(
                "scheduler worker pool lost all workers".into(),
            )));
        }
    }
}

/// A shared pool of sampling workers serving many sessions under a
/// pluggable [`SchedPolicy`].
///
/// Created by [`crate::Engine::scheduler`] (default round-robin) or
/// [`crate::Engine::scheduler_with`] (explicit policy + admission
/// bounds). Keep it alive while attached sessions run: dropping it
/// joins the workers and aborts still-queued submissions with an
/// error. Cheap handles ([`Scheduler::handle`]) are what sessions
/// hold; [`Scheduler::stats`] snapshots queue depths and dispatch
/// counters.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("image", &self.shared.image)
            .field("limits", &self.shared.limits)
            .finish()
    }
}

impl Scheduler {
    /// Spawns `threads` workers bound to `model` (at least one) under
    /// the default options.
    pub(crate) fn new(model: Arc<DiffusionModel>, threads: usize) -> Scheduler {
        Scheduler::new_with(model, threads, SchedulerOptions::default())
    }

    /// Spawns `threads` workers under an explicit policy and admission
    /// bounds.
    pub(crate) fn new_with(
        model: Arc<DiffusionModel>,
        threads: usize,
        options: SchedulerOptions,
    ) -> Scheduler {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                policy: options.policy,
                stats: StatsInner::default(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            image: model.config().image,
            threads,
            limits: options.limits,
            next_session: AtomicU64::new(1),
            next_uid: AtomicU64::new(1),
            worker_panics: AtomicU64::new(0),
            workers_lost: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(threads),
            has_faults: !options.faults.is_empty(),
            faults: Mutex::new(options.faults),
            shed_wait: options.shed_wait,
            dispatch: options.dispatch,
            slot_capacity: options.slot_capacity,
            slots_filled: AtomicU64::new(0),
            slots_idle: AtomicU64::new(0),
            batches_merged: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let model = Arc::clone(&model);
                std::thread::spawn(move || supervise(shared, model))
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The per-class admission bounds.
    pub fn limits(&self) -> QueueLimits {
        self.shared.limits
    }

    /// A cheap, cloneable handle sessions submit through. Each call
    /// allocates a fresh session id for [`SchedulerStats::per_session`]
    /// attribution; clones of one handle share its id.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle {
            session: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of queue depths, admission counters and dispatch
    /// accounting.
    pub fn stats(&self) -> SchedulerStats {
        snapshot(&self.shared)
    }

    /// Whether the worker pool can still serve: `false` once every
    /// worker thread has exhausted its respawn budget (the pool is
    /// wedged and [`SchedulerHandle`] submissions are being refused).
    /// The fleet router polls this to decide when a replica must be
    /// retired and its queue redistributed.
    pub fn is_healthy(&self) -> bool {
        self.shared.workers_alive.load(Ordering::SeqCst) > 0
    }

    /// Stops admission and aborts still-queued submissions with a
    /// typed error (their terminal timestamps still land in
    /// [`SchedulerStats::turnaround_micros`]). Workers finish their
    /// in-flight slot tables and exit; `Drop` performs the same drain
    /// before joining them, so calling this explicitly is only needed
    /// to quiesce a pool *before* letting it go out of scope — e.g. a
    /// fleet draining one replica while others keep serving.
    pub fn drain(&self) {
        drain_shared(&self.shared);
    }
}

/// The shutdown half of `Drop`, shared with [`Scheduler::drain`]:
/// flags shutdown, aborts the queue (stamping turnarounds — handles
/// may outlive the scheduler and read stats) and wakes every worker.
fn drain_shared(shared: &Shared) {
    {
        let mut st = lock_state(shared);
        st.shutdown = true;
        // Still-queued submissions must not end as silently short
        // streams: abort them explicitly.
        let drained: Vec<Submission> = st.queue.drain(..).collect();
        for sub in drained {
            st.stats.turnaround_micros += sub.submitted_at.elapsed().as_micros() as u64;
            let _ = sub.tx.send(SchedMsg::Aborted(PpError::Model(
                "scheduler shut down mid-request".into(),
            )));
        }
    }
    shared.cv.notify_all();
}

fn snapshot(shared: &Shared) -> SchedulerStats {
    let st = lock_state(shared);
    let mut queued = [0u64; 3];
    for sub in &st.queue {
        queued[sub.class.index()] += 1;
    }
    SchedulerStats {
        policy: st.policy.name().to_string(),
        threads: shared.threads,
        queued: ClassCounts::from_raw(queued),
        admitted: ClassCounts::from_raw(st.stats.admitted),
        rejected: ClassCounts::from_raw(st.stats.rejected),
        completed: ClassCounts::from_raw(st.stats.completed),
        abandoned: ClassCounts::from_raw(st.stats.abandoned),
        timed_out: ClassCounts::from_raw(st.stats.timed_out),
        shed: st.stats.shed,
        worker_panics: shared.worker_panics.load(Ordering::Relaxed),
        workers_lost: shared.workers_lost.load(Ordering::Relaxed),
        micro_batches: st.stats.micro_batches,
        samples: st.stats.samples,
        slots_filled: shared.slots_filled.load(Ordering::Relaxed),
        slots_idle: shared.slots_idle.load(Ordering::Relaxed),
        batches_merged: shared.batches_merged.load(Ordering::Relaxed),
        wait_micros: st.stats.wait_micros,
        wait_p50_micros: st.stats.wait_percentile(50),
        wait_p90_micros: st.stats.wait_percentile(90),
        wait_p50_micros_by_class: st.stats.class_wait_percentile(50),
        wait_p99_micros_by_class: st.stats.class_wait_percentile(99),
        turnaround_micros: st.stats.turnaround_micros,
        recent_wait_micros: st.stats.recent_waits.iter().copied().collect(),
        recent_wait_micros_by_class: [
            st.stats.recent_class_waits[0].iter().copied().collect(),
            st.stats.recent_class_waits[1].iter().copied().collect(),
            st.stats.recent_class_waits[2].iter().copied().collect(),
        ],
        per_session: st
            .stats
            .per_session
            .iter()
            .map(
                |(&session, &(class, micro_batches, samples))| SessionSched {
                    session,
                    class,
                    micro_batches,
                    samples,
                },
            )
            .collect(),
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        drain_shared(&self.shared);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A cloneable submission handle onto a [`Scheduler`]'s worker pool.
#[derive(Clone)]
pub struct SchedulerHandle {
    shared: Arc<Shared>,
    session: u64,
}

impl std::fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerHandle")
            .field("image", &self.shared.image)
            .field("session", &self.session)
            .finish()
    }
}

impl SchedulerHandle {
    /// Queues `jobs` for sampling with per-job seeds `seed ^ index`,
    /// micro-batched `batch` jobs at a time under `class` (and an
    /// optional `deadline` from now, soft unless `hard_deadline`);
    /// returns the in-order receiver.
    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        jobs: Vec<(GrayImage, GrayImage)>,
        seed: u64,
        batch: usize,
        cancel: CancelToken,
        class: QosClass,
        deadline: Option<Duration>,
        hard_deadline: bool,
    ) -> Result<ScheduledRx, PpError> {
        for (img, mask) in &jobs {
            for (what, side) in [("image", img), ("mask", mask)].map(|(w, i)| (w, i.width())) {
                if side != self.shared.image {
                    return Err(PpError::Shape {
                        what: format!("scheduled job {what} vs model image"),
                        expected: self.shared.image,
                        actual: side,
                    });
                }
            }
        }
        if self.shared.workers_alive.load(Ordering::SeqCst) == 0 {
            return Err(PpError::Model(
                "scheduler worker pool lost all workers".into(),
            ));
        }
        let total = jobs.len();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock_state(&self.shared);
            if st.shutdown {
                return Err(PpError::Model("scheduler is shut down".into()));
            }
            let depth = st.queue.iter().filter(|s| s.class == class).count();
            let limit = self.shared.limits.limit(class);
            if depth >= limit {
                st.stats.rejected[class.index()] += 1;
                return Err(PpError::Rejected {
                    reason: format!(
                        "{class} submission queue is full ({depth} queued, limit {limit})"
                    ),
                });
            }
            // Overload shedding: when recent queue waits say the pool
            // is saturated, refuse best-effort work at the door (it
            // would only deepen everyone's backlog). An empty window
            // never sheds — the signal must be observed, not assumed.
            if class == QosClass::BestEffort {
                if let Some(threshold) = self.shared.shed_wait {
                    let p90 = st.stats.wait_percentile(90);
                    if !st.stats.recent_waits.is_empty() && Duration::from_micros(p90) > threshold {
                        st.stats.shed += 1;
                        st.stats.rejected[class.index()] += 1;
                        return Err(PpError::Rejected {
                            reason: format!(
                                "best-effort work shed under overload \
                                 (recent wait p90 {p90}us over threshold {threshold:?})"
                            ),
                        });
                    }
                }
            }
            st.stats.admitted[class.index()] += 1;
            // Join the stride-scheduling frontier: starting at the
            // queue's minimum pass (not 0) keeps a newcomer from
            // monopolising dispatch until it "catches up" with
            // long-running submissions.
            let pass = st.queue.iter().map(|s| s.pass).min().unwrap_or(0);
            st.queue.push_back(Submission {
                uid: self.shared.next_uid.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff,
                jobs: Arc::new(jobs),
                seed,
                batch: batch.max(1),
                cursor: 0,
                dispatched: 0,
                pass,
                credits: 0,
                session: self.session,
                class,
                // checked_add: a deadline too far to represent is the
                // same as no deadline, never a panic.
                deadline: deadline.and_then(|d| Instant::now().checked_add(d)),
                hard_deadline,
                submitted_at: Instant::now(),
                cancel,
                retired: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                inflight: Arc::new(AtomicUsize::new(0)),
                tx,
            });
        }
        self.shared.cv.notify_all();
        Ok(ScheduledRx {
            rx,
            pending: BTreeMap::new(),
            next: 0,
            total,
        })
    }

    /// A snapshot of the owning scheduler's stats (see
    /// [`Scheduler::stats`]).
    pub fn stats(&self) -> SchedulerStats {
        snapshot(&self.shared)
    }

    /// Whether the owning pool can still serve (see
    /// [`Scheduler::is_healthy`]).
    pub fn is_healthy(&self) -> bool {
        self.shared.workers_alive.load(Ordering::SeqCst) > 0
    }

    /// Consumes the fault planted for this handle's session at
    /// `ordinal`, if any — the chaos hook for workloads that dispatch
    /// work themselves instead of through the sampling pool (the
    /// service's train driver keys it on the epoch index, mirroring
    /// how sampling keys on the slot ordinal). A consumed
    /// [`Fault::PanicAt`] counts against
    /// [`SchedulerStats::worker_panics`], exactly as a sampling-path
    /// panic does.
    pub(crate) fn take_fault(&self, ordinal: u64) -> Option<Fault> {
        if !self.shared.has_faults {
            return None;
        }
        let fault = self
            .shared
            .faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take(self.session, ordinal);
        if matches!(fault, Some(Fault::PanicAt { .. })) {
            self.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

/// In-order micro-batch delivery for one submission: workers may finish
/// out of order, so batches are buffered until their predecessor
/// arrived (dispatch is sequential per submission, so the dispatched
/// set is always a prefix and the reorder buffer always drains).
#[derive(Debug)]
struct ScheduledRx {
    rx: Receiver<SchedMsg>,
    pending: BTreeMap<usize, Vec<GrayImage>>,
    next: usize,
    total: usize,
}

impl Iterator for ScheduledRx {
    type Item = Result<(usize, Vec<GrayImage>), PpError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(samples) = self.pending.remove(&self.next) {
                let start = self.next;
                self.next += samples.len();
                return Some(Ok((start, samples)));
            }
            if self.next >= self.total {
                return None;
            }
            match self.rx.recv() {
                Ok(SchedMsg::Batch { start, samples }) => {
                    self.pending.insert(start, samples);
                }
                Ok(SchedMsg::Aborted(e)) => {
                    // Poison: no further batches will be delivered.
                    // The error stays typed end to end so the service
                    // can classify it (transient → retry, deadline →
                    // `TimedOut`).
                    self.total = self.next;
                    return Some(Err(e));
                }
                // All senders gone: cancellation retired the
                // submission (clean early end) — or a worker died
                // mid-batch, which would leave a gap; report that.
                Err(_) => {
                    if self.pending.is_empty() {
                        return None;
                    }
                    self.total = self.next;
                    return Some(Err(PpError::Model(
                        "scheduler worker lost a dispatched micro-batch".into(),
                    )));
                }
            }
        }
    }
}

/// A [`Sampler`] that routes requests through a shared [`Scheduler`]
/// instead of spawning a private worker pool.
///
/// This is what a [`crate::Session`] with an attached scheduler runs
/// its rounds through; outputs are bit-identical to
/// [`crate::DiffusionSampler`] over the same model because per-job RNG
/// streams (`seed ^ index`) and in-order delivery are preserved and
/// micro-batch grouping never affects a job's arithmetic. The QoS
/// class and soft deadline of each submission come from the
/// [`StreamOptions`] the round runs under
/// ([`StreamOptions::with_class`] / [`StreamOptions::with_deadline`]).
#[derive(Debug, Clone)]
pub struct ScheduledSampler {
    handle: SchedulerHandle,
    batch_size: usize,
}

impl ScheduledSampler {
    /// Wraps a scheduler handle; `batch_size` is the micro-batch
    /// granularity submissions are interleaved at (`0` = the whole
    /// request as one batch, which forfeits fairness).
    pub fn new(handle: SchedulerHandle, batch_size: usize) -> ScheduledSampler {
        ScheduledSampler { handle, batch_size }
    }
}

impl Sampler for ScheduledSampler {
    fn name(&self) -> &str {
        "diffusion-inpaint-scheduled"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        let stream = self.sample_stream(jobs, seed, &StreamOptions::default())?;
        let samples: Vec<RawSample> = stream.collect::<Result<_, _>>()?;
        if samples.len() != jobs.len() {
            return Err(PpError::Model(format!(
                "scheduler returned {} of {} samples",
                samples.len(),
                jobs.len()
            )));
        }
        Ok(samples)
    }

    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        if opts.cancel.is_cancelled() {
            return Ok(Box::new(std::iter::empty()));
        }
        let images: Vec<(GrayImage, GrayImage)> = jobs
            .iter()
            .map(|(l, m)| (GrayImage::from_layout(l), m.as_image().clone()))
            .collect();
        let micro = if self.batch_size == 0 {
            jobs.len().max(1)
        } else {
            self.batch_size
        };
        let rx = self.handle.submit(
            images,
            seed,
            micro,
            opts.cancel.clone(),
            opts.class,
            opts.deadline,
            opts.hard_deadline,
        )?;
        let templates: Vec<Arc<Layout>> = jobs.iter().map(|(t, _)| Arc::clone(t)).collect();
        let hook = opts.progress.clone();
        let total = jobs.len();
        let mut completed = 0usize;
        let iter = rx.flat_map(move |item| match item {
            Ok((start, samples)) => {
                completed += samples.len();
                if let Some(hook) = &hook {
                    hook(Progress { completed, total });
                }
                let batch_templates = templates[start..start + samples.len()].to_vec();
                samples
                    .into_iter()
                    .zip(batch_templates)
                    .map(|(raw, template)| Ok(RawSample { template, raw }))
                    .collect::<Vec<_>>()
            }
            Err(e) => vec![Err(e)],
        });
        Ok(Box::new(iter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_diffusion::DiffusionConfig;

    fn tiny_model() -> Arc<DiffusionModel> {
        Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 3))
    }

    fn jobs(n: usize) -> Vec<(GrayImage, GrayImage)> {
        (0..n)
            .map(|i| {
                let mut image = GrayImage::filled(16, 16, -1.0);
                for y in 0..16 {
                    image.set(i as u32 % 16, y, 1.0);
                }
                (image, GrayImage::filled(16, 16, 1.0))
            })
            .collect()
    }

    fn submit_default(
        sched: &Scheduler,
        jobs: Vec<(GrayImage, GrayImage)>,
        seed: u64,
        batch: usize,
        cancel: CancelToken,
    ) -> Result<ScheduledRx, PpError> {
        sched
            .handle()
            .submit(jobs, seed, batch, cancel, QosClass::Batch, None, false)
    }

    /// A view with the pass the scheduler would maintain for a
    /// submission that joined at frontier 0 and dispatched this many
    /// micro-batches (`pass = dispatched × 4 / weight`).
    fn view(class: QosClass, deadline_in: Option<u64>, dispatched: u64) -> SchedView {
        let stride = u64::from(QosClass::Interactive.weight() / class.weight());
        view_at(class, deadline_in, dispatched, dispatched * stride)
    }

    fn view_at(class: QosClass, deadline_in: Option<u64>, dispatched: u64, pass: u64) -> SchedView {
        SchedView {
            class,
            deadline: deadline_in.map(|ms| Instant::now() + Duration::from_secs(ms)),
            dispatched,
            pass,
            remaining: 1,
            session: 0,
        }
    }

    #[test]
    fn round_robin_always_rotates_the_front() {
        let q = [
            view(QosClass::BestEffort, None, 9),
            view(QosClass::Interactive, Some(1), 0),
        ];
        assert_eq!(RoundRobin.pick(&q), 0);
    }

    #[test]
    fn weighted_fair_shares_by_class_weight() {
        // An interactive submission's pass advances 4x slower than a
        // best-effort one's: after 3 interactive dispatches (pass 3)
        // and 1 best-effort dispatch (pass 4), interactive still runs.
        let q = [
            view(QosClass::BestEffort, None, 1),
            view(QosClass::Interactive, None, 3),
        ];
        assert_eq!(WeightedFair.pick(&q), 1);
        // At pass parity the heavier class wins — at equal virtual
        // time the better QoS class is served first, so an interactive
        // arrival at the frontier preempts a best-effort flood at the
        // next free slot instead of waiting out a full frontier round.
        let q = [
            view(QosClass::BestEffort, None, 1),
            view(QosClass::Interactive, None, 4),
        ];
        assert_eq!(WeightedFair.pick(&q), 1);
        // At pass *and* weight parity the oldest submission wins.
        let q = [
            view(QosClass::Batch, None, 2),
            view(QosClass::Batch, None, 2),
        ];
        assert_eq!(WeightedFair.pick(&q), 0);
        // Single-class queues degrade to exact round-robin: equal
        // counts pick the front.
        let q = [
            view(QosClass::Batch, None, 2),
            view(QosClass::Batch, None, 2),
        ];
        assert_eq!(WeightedFair.pick(&q), 0);
        // A newcomer joins at the frontier (submit initialises its
        // pass to the queue minimum), so an old submission with many
        // dispatches is not starved while the newcomer "catches up":
        // at the shared frontier the heavier class simply wins ties by
        // accumulating pass more slowly.
        let q = [
            view_at(QosClass::Batch, None, 300, 600),
            view_at(QosClass::BestEffort, None, 0, 600),
        ];
        assert_eq!(
            WeightedFair.pick(&q),
            0,
            "frontier newcomer must not preempt the established share"
        );
    }

    /// The stride frontier is what `submit` hands a newcomer: the
    /// minimum pass over the live queue, never 0.
    #[test]
    fn newcomers_join_at_the_pass_frontier() {
        let model = tiny_model();
        let sched = Scheduler::new_with(
            Arc::clone(&model),
            1,
            SchedulerOptions::new().policy(WeightedFair),
        );
        // Drain a first submission completely so its pass advanced,
        // then check a second one still gets served promptly (its pass
        // starts at the frontier, but more importantly the queue-min
        // rule means an empty queue resets to 0 without underflow).
        let rx = submit_default(&sched, jobs(6), 1, 2, CancelToken::new()).unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 6);
        let rx = submit_default(&sched, jobs(4), 2, 2, CancelToken::new()).unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 4);
        assert_eq!(sched.stats().completed.get(QosClass::Batch), 2);
    }

    #[test]
    fn deadline_first_orders_by_deadline_then_falls_back() {
        let q = [
            view(QosClass::Interactive, None, 0),
            view(QosClass::BestEffort, Some(60), 5),
            view(QosClass::Batch, Some(10), 5),
        ];
        // The tightest deadline wins regardless of class or position.
        assert_eq!(DeadlineFirst.pick(&q), 2);
        // No deadlines anywhere: weighted-fair order.
        let q = [
            view(QosClass::BestEffort, None, 1),
            view(QosClass::Interactive, None, 3),
        ];
        assert_eq!(DeadlineFirst.pick(&q), 1);
    }

    #[test]
    fn interleaved_submissions_match_solo_batches() {
        let model = tiny_model();
        let solo_a = model.sample_inpaint_batch_sized(&jobs(7), 5, 1, 0).unwrap();
        let solo_b = model.sample_inpaint_batch_sized(&jobs(5), 9, 1, 0).unwrap();
        let sched = Scheduler::new(Arc::clone(&model), 3);
        let rx_a = submit_default(&sched, jobs(7), 5, 2, CancelToken::new()).unwrap();
        let rx_b = submit_default(&sched, jobs(5), 9, 3, CancelToken::new()).unwrap();
        let collect = |rx: ScheduledRx| {
            let mut out = Vec::new();
            for item in rx {
                let (start, samples) = item.unwrap();
                assert_eq!(start, out.len(), "delivery out of job order");
                out.extend(samples);
            }
            out
        };
        // Consume on two threads so both streams drain while workers
        // interleave the submissions.
        let (got_a, got_b) = std::thread::scope(|s| {
            let ha = s.spawn(|| collect(rx_a));
            let got_b = collect(rx_b);
            (ha.join().unwrap(), got_b)
        });
        assert_eq!(got_a, solo_a);
        assert_eq!(got_b, solo_b);
        // Observability: both submissions were admitted, dispatched
        // and completed under distinct session ids.
        let stats = sched.stats();
        assert_eq!(stats.policy, "round-robin");
        assert_eq!(stats.admitted.get(QosClass::Batch), 2);
        assert_eq!(stats.completed.get(QosClass::Batch), 2);
        assert_eq!(stats.samples, 12);
        assert_eq!(stats.per_session.len(), 2);
        assert!(stats.micro_batches >= 4 + 2, "micro-batch accounting");
    }

    #[test]
    fn admission_control_rejects_at_the_class_bound() {
        let model = tiny_model();
        // One worker, zero-capacity interactive queue: the very first
        // interactive submit must be refused while batch still fits.
        let sched = Scheduler::new_with(
            model,
            1,
            SchedulerOptions::new().limits(QueueLimits {
                interactive: 0,
                batch: 8,
                best_effort: 8,
            }),
        );
        let handle = sched.handle();
        let err = handle
            .submit(
                jobs(4),
                1,
                1,
                CancelToken::new(),
                QosClass::Interactive,
                None,
                false,
            )
            .unwrap_err();
        assert!(
            matches!(err, PpError::Rejected { .. }),
            "wrong error: {err}"
        );
        assert!(
            err.to_string().contains("interactive"),
            "reason must name the class: {err}"
        );
        // The batch class is unaffected by the interactive bound.
        let rx = handle
            .submit(
                jobs(2),
                1,
                1,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false,
            )
            .unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 2);
        let stats = sched.stats();
        assert_eq!(stats.rejected.get(QosClass::Interactive), 1);
        assert_eq!(stats.admitted.get(QosClass::Batch), 1);
    }

    #[test]
    fn cancellation_retires_a_submission_cleanly() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let cancel = CancelToken::new();
        let rx = submit_default(&sched, jobs(32), 1, 1, cancel.clone()).unwrap();
        let mut seen = 0;
        for item in rx {
            let _ = item.expect("cancellation is not an error");
            seen += 1;
            cancel.cancel();
        }
        assert!(seen >= 1, "partial results must still be delivered");
        assert!(seen < 32, "cancellation failed to stop the submission");
    }

    #[test]
    fn shutdown_aborts_queued_submissions_with_an_error() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let rx = submit_default(&sched, jobs(64), 1, 1, CancelToken::new()).unwrap();
        let handle = sched.handle();
        drop(sched);
        // Whatever was in flight may arrive; the tail must be a hard
        // error, never a silent truncation.
        let mut err = None;
        for item in rx {
            if let Err(e) = item {
                err = Some(e);
                break;
            }
        }
        assert!(err.is_some(), "shutdown must surface an error");
        // New submissions are rejected.
        assert!(handle
            .submit(
                jobs(1),
                0,
                1,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false
            )
            .is_err());
    }

    /// Dropping a submission's stream must retire it: the pool moves
    /// on to later submissions instead of sampling into the void.
    #[test]
    fn dropped_stream_retires_its_submission() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let rx = submit_default(&sched, jobs(64), 1, 1, CancelToken::new()).unwrap();
        drop(rx);
        // A fresh submission drains promptly because the abandoned one
        // is retired after at most one failed delivery.
        let rx2 = submit_default(&sched, jobs(2), 3, 1, CancelToken::new()).unwrap();
        let delivered: usize = rx2.map(|item| item.unwrap().1.len()).sum();
        assert_eq!(delivered, 2);
    }

    #[test]
    fn submit_validates_shapes() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let bad = vec![(
            GrayImage::filled(8, 8, -1.0),
            GrayImage::filled(16, 16, 1.0),
        )];
        let err = submit_default(&sched, bad, 0, 1, CancelToken::new()).unwrap_err();
        assert!(matches!(err, PpError::Shape { .. }), "wrong error: {err}");
    }

    #[test]
    fn wait_percentiles_use_nearest_rank() {
        let mut stats = StatsInner::default();
        assert_eq!(stats.wait_percentile(90), 0, "empty window reads 0");
        stats.recent_waits.extend([50, 10, 40, 20, 30]);
        assert_eq!(stats.wait_percentile(50), 30);
        assert_eq!(stats.wait_percentile(90), 50);
        assert_eq!(stats.wait_percentile(100), 50);
    }

    /// A hand-built fixture snapshot with distinctive values in every
    /// field `merge` must touch.
    fn merge_fixture(policy: &str, scale: u64) -> SchedulerStats {
        SchedulerStats {
            policy: policy.to_string(),
            threads: scale as usize,
            queued: ClassCounts::from_raw([scale, 0, 0]),
            admitted: ClassCounts::from_raw([10 * scale, scale, 0]),
            rejected: ClassCounts::from_raw([0, 0, scale]),
            completed: ClassCounts::from_raw([9 * scale, scale, 0]),
            abandoned: ClassCounts::from_raw([scale, 0, 0]),
            timed_out: ClassCounts::from_raw([0, scale, 0]),
            shed: scale,
            worker_panics: 2 * scale,
            workers_lost: scale,
            micro_batches: 100 * scale,
            samples: 400 * scale,
            slots_filled: 1000 * scale,
            slots_idle: 10 * scale,
            batches_merged: 5 * scale,
            wait_micros: 7000 * scale,
            turnaround_micros: 9000 * scale,
            recent_wait_micros: vec![10 * scale, 20 * scale],
            recent_wait_micros_by_class: [vec![10 * scale], vec![20 * scale], Vec::new()],
            per_session: vec![SessionSched {
                session: 1,
                class: QosClass::Interactive,
                micro_batches: 3 * scale,
                samples: 12 * scale,
            }],
            ..SchedulerStats::default()
        }
    }

    #[test]
    fn merge_sums_counters_and_recomputes_percentiles() {
        let merged = SchedulerStats::merge(&[merge_fixture("rr", 1), merge_fixture("rr", 2)]);
        assert_eq!(merged.policy, "rr", "uniform policy keeps its name");
        assert_eq!(merged.threads, 3);
        assert_eq!(merged.queued.total(), 3);
        assert_eq!(merged.admitted, ClassCounts::from_raw([30, 3, 0]));
        assert_eq!(merged.rejected.best_effort, 3);
        assert_eq!(merged.completed, ClassCounts::from_raw([27, 3, 0]));
        assert_eq!(merged.abandoned.interactive, 3);
        assert_eq!(merged.timed_out.batch, 3);
        assert_eq!(merged.shed, 3);
        assert_eq!(merged.worker_panics, 6);
        assert_eq!(merged.workers_lost, 3);
        assert_eq!(merged.micro_batches, 300);
        assert_eq!(merged.samples, 1200);
        assert_eq!(merged.slots_filled, 3000);
        assert_eq!(merged.slots_idle, 30);
        assert_eq!(merged.batches_merged, 15);
        assert_eq!(merged.wait_micros, 21_000);
        assert_eq!(merged.turnaround_micros, 27_000);
        // Windows concatenate ([10, 20] ++ [20, 40]) and percentiles
        // are recomputed over the combined window, not averaged:
        // nearest-rank p50 of {10, 20, 20, 40} is 20, p90 is 40.
        assert_eq!(merged.recent_wait_micros, vec![10, 20, 20, 40]);
        assert_eq!(merged.wait_p50_micros, 20);
        assert_eq!(merged.wait_p90_micros, 40);
        assert_eq!(
            merged.wait_p50_micros_by_class,
            ClassCounts::from_raw([10, 20, 0])
        );
        assert_eq!(
            merged.wait_p99_micros_by_class,
            ClassCounts::from_raw([20, 40, 0])
        );
        // Same session id on two parts: summed (ids are per-scheduler;
        // fleet callers keep per-replica snapshots for attribution).
        assert_eq!(merged.per_session.len(), 1);
        assert_eq!(merged.per_session[0].micro_batches, 9);
        assert_eq!(merged.per_session[0].samples, 36);
    }

    #[test]
    fn merge_handles_empty_and_mixed_policies() {
        let empty = SchedulerStats::merge(&[]);
        assert_eq!(empty.policy, "");
        assert_eq!(empty.threads, 0);
        assert_eq!(empty.wait_p90_micros, 0, "no window reads 0");
        let mixed = SchedulerStats::merge(&[merge_fixture("rr", 1), merge_fixture("wf", 1)]);
        assert_eq!(mixed.policy, "mixed");
        assert_eq!(mixed.threads, 2);
        // A single part round-trips its own percentiles.
        let solo = SchedulerStats::merge(&[merge_fixture("df", 2)]);
        assert_eq!(solo.policy, "df");
        assert_eq!(solo.wait_p50_micros, 20);
        assert_eq!(solo.wait_p90_micros, 40);
    }

    /// An injected panic is contained to its one submission: the stream
    /// ends with a typed `WorkerPanic`, the pool keeps serving, and a
    /// later submission on the same pool completes — with `stats()`
    /// working throughout (no poisoned-mutex panic).
    #[test]
    fn injected_panic_is_isolated_and_the_pool_survives() {
        let model = tiny_model();
        // Session ids start at 1; the first handle() call gets 1.
        // Faults key on slot ordinals (job index within the
        // submission): ordinal 2 is the first slot of the second
        // admission group under micro-batch width 2.
        let plan = FaultPlan::new().inject(1, Fault::PanicAt { batch: 2 });
        let sched = Scheduler::new_with(model, 1, SchedulerOptions::new().faults(plan));
        let handle = sched.handle();
        let rx = handle
            .submit(
                jobs(6),
                7,
                2,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false,
            )
            .unwrap();
        let mut delivered = 0;
        let mut err = None;
        for item in rx {
            match item {
                Ok((_, samples)) => delivered += samples.len(),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(delivered, 2, "slots 0-1 land before the slot-2 fault");
        let err = err.expect("the faulted submission must surface an error");
        assert!(
            matches!(err, PpError::WorkerPanic { .. }),
            "wrong error: {err}"
        );
        assert!(err.is_transient(), "worker panics are retryable");
        // The pool survived: stats work and a fresh submission drains.
        let stats = sched.stats();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.workers_lost, 0, "the panic never escaped the batch");
        let rx = submit_default(&sched, jobs(3), 9, 1, CancelToken::new()).unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 3);
    }

    #[test]
    fn injected_error_surfaces_as_transient_io() {
        let model = tiny_model();
        let plan = FaultPlan::new().inject(1, Fault::ErrAt { batch: 0 });
        let sched = Scheduler::new_with(model, 1, SchedulerOptions::new().faults(plan));
        let handle = sched.handle();
        let rx = handle
            .submit(
                jobs(2),
                3,
                1,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false,
            )
            .unwrap();
        let err = rx
            .map(Result::unwrap_err)
            .next()
            .expect("the fault fires on the first micro-batch");
        assert!(matches!(err, PpError::Io(_)), "wrong error: {err}");
        assert!(err.is_transient());
    }

    /// An already-expired hard deadline retires the submission with
    /// `DeadlineExceeded` before any micro-batch is dispatched.
    #[test]
    fn expired_hard_deadline_times_the_submission_out() {
        let model = tiny_model();
        let sched = Scheduler::new(model, 1);
        let handle = sched.handle();
        let rx = handle
            .submit(
                jobs(4),
                5,
                1,
                CancelToken::new(),
                QosClass::Interactive,
                Some(Duration::ZERO),
                true,
            )
            .unwrap();
        let err = rx
            .map(Result::unwrap_err)
            .next()
            .expect("a zero hard deadline must fire");
        assert!(
            matches!(err, PpError::DeadlineExceeded { .. }),
            "wrong error: {err}"
        );
        assert!(!err.is_transient(), "an expired deadline must not retry");
        // Spin briefly: the abort and the timed_out counter land when a
        // worker purges the queue, slightly after submit returns.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sched.stats().timed_out.get(QosClass::Interactive) == 0 {
            assert!(Instant::now() < deadline, "timed_out counter never moved");
            std::thread::yield_now();
        }
        // A soft deadline over the same pool is advisory: it completes.
        let rx = handle
            .submit(
                jobs(2),
                5,
                1,
                CancelToken::new(),
                QosClass::Interactive,
                Some(Duration::ZERO),
                false,
            )
            .unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 2);
    }

    /// With a zero shed threshold, the first observed wait flips the
    /// scheduler into shedding best-effort work — while batch and
    /// interactive submissions still pass admission.
    #[test]
    fn overload_shedding_rejects_best_effort_only() {
        let model = tiny_model();
        let sched = Scheduler::new_with(
            model,
            1,
            SchedulerOptions::new().shed_best_effort_above(Duration::ZERO),
        );
        let handle = sched.handle();
        // Empty window: nothing sheds, even at threshold zero.
        let rx_a = handle
            .submit(
                jobs(2),
                1,
                1,
                CancelToken::new(),
                QosClass::BestEffort,
                None,
                false,
            )
            .expect("an unobserved pool must not shed");
        // A batch-class submission queued behind A's in-flight work
        // records a first-dispatch wait of at least one full DDIM
        // micro-batch — provably nonzero (batch is never shed, so this
        // passes admission whatever the window says).
        let rx_b = handle
            .submit(
                jobs(2),
                2,
                1,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false,
            )
            .unwrap();
        assert_eq!(rx_a.map(|r| r.unwrap().1.len()).sum::<usize>(), 2);
        assert_eq!(rx_b.map(|r| r.unwrap().1.len()).sum::<usize>(), 2);
        // The wait window now holds a nonzero entry, beating the zero
        // threshold: best-effort is shed...
        let err = handle
            .submit(
                jobs(1),
                3,
                1,
                CancelToken::new(),
                QosClass::BestEffort,
                None,
                false,
            )
            .unwrap_err();
        assert!(
            matches!(err, PpError::Rejected { .. }),
            "wrong error: {err}"
        );
        assert!(err.to_string().contains("shed"), "reason was: {err}");
        // ...while higher classes still pass.
        let rx = handle
            .submit(
                jobs(1),
                4,
                1,
                CancelToken::new(),
                QosClass::Batch,
                None,
                false,
            )
            .unwrap();
        assert_eq!(rx.map(|r| r.unwrap().1.len()).sum::<usize>(), 1);
        let stats = sched.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected.get(QosClass::BestEffort), 1);
        assert!(stats.wait_p90_micros >= stats.wait_p50_micros);
    }
}
