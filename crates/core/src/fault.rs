//! Deterministic fault injection for the scheduler's worker pool.
//!
//! The repository's robustness discipline is to *prove* fault handling
//! by injecting damage and asserting the system contains it
//! (`tests/failure_injection.rs` does this for the DRC layer). This
//! module lifts that discipline to the serving layer: a [`FaultPlan`]
//! is a seeded, fully deterministic schedule of faults — panics,
//! transient errors, stalls — that the scheduler consults at every
//! slot admission, immediately before a job would enter a worker's
//! slot table.
//!
//! A plan is keyed by `(session id, slot ordinal)`: session ids are
//! allocated in submission order (one per [`crate::Scheduler::handle`]
//! / [`crate::Service::submit`] call) and the slot ordinal is the
//! job's zero-based index *within* its submission, so a fault fires at
//! the same logical point regardless of worker count, slot capacity or
//! interleaving. (Before continuous batching the key was the
//! micro-batch ordinal; under fixed micro-batch width `w`, old ordinal
//! `k` corresponds to slot ordinal `k × w` — the first job of that
//! batch.) Each scheduled fault fires **once** and is consumed — a
//! retried submission starts a fresh ordinal sequence and only hits
//! faults scheduled again for it (schedule the same fault twice to
//! fail two attempts).
//!
//! Install a plan with [`crate::SchedulerOptions::faults`]. An empty
//! plan (the default) costs a single branch per slot admission on the
//! dispatch path; `tests/chaos_scheduler.rs` and the `faulted` mode of
//! `sampling_bench` are the intended consumers. Production services
//! simply never install one.

use std::collections::BTreeMap;
use std::time::Duration;

/// One scheduled fault, applied when the targeted slot would be
/// admitted into a worker's table (so an injected panic or error
/// wastes no DDIM compute — the slot never starts, and co-resident
/// slots from other submissions are untouched).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Poison the submission as a worker panic (exercises panic
    /// isolation and the [`crate::PpError::WorkerPanic`] surface).
    /// Synthesized at admission: the abort hits only the targeted
    /// submission, never the shared slot table stepping around it.
    PanicAt {
        /// Zero-based slot ordinal (job index) within the submission.
        batch: u64,
    },
    /// Fail the submission with a transient I/O error
    /// ([`crate::PpError::Io`], `ErrorKind::Interrupted` — the class of
    /// failure a [`crate::RetryPolicy`] is for).
    ErrAt {
        /// Zero-based slot ordinal (job index) within the submission.
        batch: u64,
    },
    /// Sleep before admitting the slot normally (exercises deadline
    /// enforcement and queue-wait shedding; the slot still completes
    /// and delivers).
    StallFor {
        /// Zero-based slot ordinal (job index) within the submission.
        batch: u64,
        /// How long the worker sleeps before sampling.
        duration: Duration,
    },
}

impl Fault {
    /// The slot ordinal this fault targets. (The field keeps its
    /// pre-continuous-batching name `batch` for source compatibility.)
    pub fn batch(&self) -> u64 {
        match self {
            Fault::PanicAt { batch } | Fault::ErrAt { batch } | Fault::StallFor { batch, .. } => {
                *batch
            }
        }
    }
}

/// A deterministic schedule of [`Fault`]s, keyed by scheduler session
/// id. Build one explicitly with [`FaultPlan::inject`] or derive a
/// pseudo-random (but seed-stable) schedule with [`FaultPlan::seeded`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    by_session: BTreeMap<u64, Vec<Fault>>,
    stall_all: Option<Duration>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` for `session`. Scheduling the same fault
    /// twice makes it fire on two separate occurrences of its slot
    /// ordinal (e.g. the first two attempts of a retried submission).
    pub fn inject(mut self, session: u64, fault: Fault) -> FaultPlan {
        self.by_session.entry(session).or_default().push(fault);
        self
    }

    /// A seed-stable pseudo-random plan: one fault per session in
    /// `sessions`, with kind, target slot ordinal (below `batches`)
    /// and stall length all derived from `seed` via SplitMix64. The
    /// same seed always produces the same plan — this is what
    /// `ci.sh --chaos` sweeps over fixed seeds.
    pub fn seeded(seed: u64, sessions: std::ops::Range<u64>, batches: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let batches = batches.max(1);
        for session in sessions {
            let r = splitmix64(seed ^ session.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let batch = (r >> 8) % batches;
            let fault = match r % 3 {
                0 => Fault::PanicAt { batch },
                1 => Fault::ErrAt { batch },
                _ => Fault::StallFor {
                    batch,
                    duration: Duration::from_millis(1 + (r >> 40) % 20),
                },
            };
            plan = plan.inject(session, fault);
        }
        plan
    }

    /// Stalls **every** slot admission by `duration`, on top of any
    /// scheduled faults. Unlike [`FaultPlan::inject`]ed stalls this is
    /// not consumed: it models a fixed off-CPU round trip per
    /// admission (a remote accelerator call, storage fetch, network
    /// hop), which is what the `replicas` mode of `sampling_bench`
    /// uses to make fleet-level overlap observable on a single-core
    /// host. A zero duration is ignored.
    pub fn stall_all(mut self, duration: Duration) -> FaultPlan {
        self.stall_all = (duration > Duration::ZERO).then_some(duration);
        self
    }

    /// Whether the plan schedules nothing (the scheduler skips the
    /// per-admission lookup entirely for empty plans).
    pub fn is_empty(&self) -> bool {
        self.by_session.values().all(Vec::is_empty) && self.stall_all.is_none()
    }

    /// Total faults still scheduled.
    pub fn remaining(&self) -> usize {
        self.by_session.values().map(Vec::len).sum()
    }

    /// Consumes and returns the first fault scheduled for
    /// `(session, slot ordinal)`, if any. An unconditional
    /// [`FaultPlan::stall_all`] is synthesized (not consumed) when no
    /// scheduled fault matches.
    pub(crate) fn take(&mut self, session: u64, batch: u64) -> Option<Fault> {
        let scheduled = self.by_session.get_mut(&session).and_then(|faults| {
            let at = faults.iter().position(|f| f.batch() == batch)?;
            Some(faults.remove(at))
        });
        scheduled.or(self
            .stall_all
            .map(|duration| Fault::StallFor { batch, duration }))
    }
}

/// SplitMix64: the standard 64-bit mixer — tiny, statistically solid,
/// and dependency-free (the compat `rand` stand-in is not needed here).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_consumed_once_in_schedule_order() {
        let mut plan = FaultPlan::new()
            .inject(1, Fault::PanicAt { batch: 0 })
            .inject(1, Fault::PanicAt { batch: 0 })
            .inject(2, Fault::ErrAt { batch: 3 });
        assert_eq!(plan.remaining(), 3);
        assert!(!plan.is_empty());
        // Wrong session / wrong batch: nothing fires.
        assert_eq!(plan.take(3, 0), None);
        assert_eq!(plan.take(1, 1), None);
        // Duplicates fire once each.
        assert_eq!(plan.take(1, 0), Some(Fault::PanicAt { batch: 0 }));
        assert_eq!(plan.take(1, 0), Some(Fault::PanicAt { batch: 0 }));
        assert_eq!(plan.take(1, 0), None);
        assert_eq!(plan.take(2, 3), Some(Fault::ErrAt { batch: 3 }));
        assert!(plan.is_empty());
    }

    #[test]
    fn stall_all_fires_everywhere_and_is_never_consumed() {
        let stall = Duration::from_millis(2);
        let mut plan = FaultPlan::new()
            .inject(1, Fault::ErrAt { batch: 0 })
            .stall_all(stall);
        assert!(!plan.is_empty());
        // Scheduled faults still win (and are consumed)...
        assert_eq!(plan.take(1, 0), Some(Fault::ErrAt { batch: 0 }));
        // ...after which every (session, ordinal) synthesizes a stall.
        for (session, batch) in [(1, 0), (1, 7), (42, 3)] {
            assert_eq!(
                plan.take(session, batch),
                Some(Fault::StallFor {
                    batch,
                    duration: stall
                })
            );
        }
        assert!(!plan.is_empty(), "stall_all persists");
        assert_eq!(plan.remaining(), 0, "no scheduled faults left");
        // A zero stall is a no-op plan again.
        assert!(FaultPlan::new().stall_all(Duration::ZERO).is_empty());
    }

    #[test]
    fn seeded_plans_are_seed_stable_and_bounded() {
        let a = FaultPlan::seeded(0xC4A05, 1..5, 4);
        let b = FaultPlan::seeded(0xC4A05, 1..5, 4);
        let c = FaultPlan::seeded(0xC4A06, 1..5, 4);
        assert_eq!(a.by_session, b.by_session, "same seed, same plan");
        assert_ne!(a.by_session, c.by_session, "different seed, different plan");
        assert_eq!(a.remaining(), 4, "one fault per session");
        for faults in a.by_session.values() {
            for f in faults {
                assert!(f.batch() < 4, "batch within bound: {f:?}");
                if let Fault::StallFor { duration, .. } = f {
                    assert!(*duration <= Duration::from_millis(20));
                }
            }
        }
    }
}
