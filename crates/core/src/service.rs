//! The QoS front door: declarative job submission over an engine.
//!
//! [`Service`] is the top of the stack for multi-tenant serving: it
//! owns one [`Engine`], one policy-driven [`Scheduler`], and a
//! per-class admission gate for whole jobs. Tenants describe work as
//! [`JobSpec`]s (kind, QoS class, soft deadline, sample budget, config
//! shaping) and get back a [`JobHandle`] they can poll, block on,
//! meter, or cancel; every job ends in exactly one terminal
//! [`JobOutcome`].
//!
//! ```no_run
//! use patternpaint_core::{Engine, JobOutcome, JobSpec, PipelineConfig, QosClass, Service};
//! use pp_pdk::SynthNode;
//!
//! # fn main() -> Result<(), patternpaint_core::PpError> {
//! let engine = Engine::builder(SynthNode::default(), PipelineConfig::quick())
//!     .pretrained_engine()?;
//! let service = Service::new(&engine, Default::default());
//!
//! let handle = service.submit(
//!     JobSpec::iterative(2)
//!         .with_class(QosClass::Interactive)
//!         .with_budget(500),
//! )?;
//! match handle.wait() {
//!     JobOutcome::Completed(report) => println!("library: {}", report.library.len()),
//!     other => eprintln!("{other}"),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Admission is two-layered and both layers reject with
//! [`PpError::Rejected`] instead of queueing without bound: the
//! service bounds *concurrent jobs* per class
//! ([`ServiceOptions::job_limits`]), and the scheduler underneath
//! bounds *sampling submissions* per class
//! ([`crate::SchedulerOptions::limits`]). A rejected submit leaves no
//! trace; retrying after an existing handle resolves is the expected
//! recovery (see `examples/engine_service.rs`).
//!
//! One process outgrown? [`crate::Fleet`] is the same front door over
//! N engine replicas: it accepts the same [`JobSpec`]s, returns the
//! same [`JobHandle`]s and resolves to the same [`JobOutcome`]s, with
//! routing, work-stealing and failover behind the submit call.

use crate::artifact::ArtifactStore;
use crate::engine::{Engine, Session};
use crate::error::PpError;
use crate::fault::Fault;
use crate::jobspec::{JobKind, JobSpec, QosClass};
use crate::library::PatternLibrary;
use crate::pipeline::IterationStats;
use crate::scheduler::{
    ClassCounts, QueueLimits, Scheduler, SchedulerHandle, SchedulerOptions, SchedulerStats,
};
use crate::stream::{CancelToken, GenerationRequest, Progress, ProgressHook, StreamOptions};
use crate::train::{TrainRun, TrainSpec, TrainSummary};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Build-time service configuration.
#[derive(Default)]
pub struct ServiceOptions {
    /// Sampling worker threads in the shared pool (`0` = the engine
    /// configuration's `threads`).
    pub threads: usize,
    /// Scheduler policy and per-class sampling-submission bounds.
    pub scheduler: SchedulerOptions,
    /// Per-class bounds on *concurrent jobs* (queued or running).
    /// Overflow rejects at [`Service::submit`].
    pub job_limits: QueueLimits,
    /// Artifact store for stateful workloads: [`JobKind::Train`] jobs
    /// checkpoint through it (and ingest saved session libraries from
    /// it). `None` rejects Train submissions with [`PpError::Config`].
    pub store: Option<Arc<dyn ArtifactStore>>,
}

impl fmt::Debug for ServiceOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceOptions")
            .field("threads", &self.threads)
            .field("scheduler", &self.scheduler)
            .field("job_limits", &self.job_limits)
            .field("store", &self.store.as_ref().map(|_| "dyn ArtifactStore"))
            .finish()
    }
}

/// Job-level admission counters (the scheduler's own dispatch counters
/// live in [`SchedulerStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs currently admitted and not yet terminal, per class.
    pub active: ClassCounts,
    /// Jobs admitted since the service started.
    pub submitted: ClassCounts,
    /// Jobs refused by admission control.
    pub rejected: ClassCounts,
    /// Jobs that reached a terminal outcome.
    pub finished: ClassCounts,
    /// Attempt re-runs across all jobs: each transient failure that a
    /// [`crate::RetryPolicy`] re-submitted adds one (a job that succeeds on
    /// attempt 3 contributed 2).
    pub retries: u64,
}

#[derive(Default)]
struct ServiceCounters {
    active: [u64; 3],
    submitted: [u64; 3],
    rejected: [u64; 3],
    finished: [u64; 3],
    retries: u64,
}

struct ServiceShared {
    counters: Mutex<ServiceCounters>,
    job_limits: QueueLimits,
    next_job: AtomicU64,
}

/// Locks the service counters, recovering from poisoning: counter
/// bookkeeping stays coherent at any interleaving point, and `stats()`
/// must keep answering after a worker or job thread panicked.
fn lock_counters(shared: &ServiceShared) -> MutexGuard<'_, ServiceCounters> {
    shared
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The multi-tenant front door: one engine, one scheduler, declarative
/// [`JobSpec`] submission with per-class admission control.
///
/// Dropping the service cancels outstanding jobs (cooperatively — each
/// resolves to [`JobOutcome::Cancelled`] with its partial results),
/// joins their threads, and shuts the scheduler pool down. Handles
/// held by callers stay valid: a [`JobHandle::wait`] after the drop
/// returns the terminal outcome that was reached.
pub struct Service {
    engine: Engine,
    scheduler: Scheduler,
    shared: Arc<ServiceShared>,
    store: Option<Arc<dyn ArtifactStore>>,
    jobs: Mutex<Vec<(CancelToken, JoinHandle<()>)>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("scheduler", &self.scheduler)
            .field("job_limits", &self.shared.job_limits)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Opens a front door over `engine`: spawns the shared sampling
    /// pool under `options.scheduler` and starts admitting jobs.
    pub fn new(engine: &Engine, options: ServiceOptions) -> Service {
        let threads = if options.threads == 0 {
            engine.config().threads
        } else {
            options.threads
        };
        let scheduler = engine.scheduler_with(threads, options.scheduler);
        Service {
            engine: engine.clone(),
            scheduler,
            shared: Arc::new(ServiceShared {
                counters: Mutex::new(ServiceCounters::default()),
                job_limits: options.job_limits,
                next_job: AtomicU64::new(1),
            }),
            store: options.store,
            jobs: Mutex::new(Vec::new()),
        }
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A snapshot of the scheduler's queue depths and dispatch
    /// counters.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// A snapshot of job-level admission counters.
    pub fn stats(&self) -> ServiceStats {
        let c = lock_counters(&self.shared);
        ServiceStats {
            active: counts(&c.active),
            submitted: counts(&c.submitted),
            rejected: counts(&c.rejected),
            finished: counts(&c.finished),
            retries: c.retries,
        }
    }

    /// Submits a job described by `spec`; returns immediately with a
    /// [`JobHandle`].
    ///
    /// Admission and validation are synchronous: a handle is returned
    /// only for work that was actually accepted, so a caller can treat
    /// `Err` as "nothing happened" and retry.
    ///
    /// # Errors
    ///
    /// [`PpError::Rejected`] when the spec's class already has
    /// [`ServiceOptions::job_limits`] jobs in flight;
    /// [`PpError::Config`] when the spec's config shaping fails
    /// validation or tries to change the engine's model architecture.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, PpError> {
        if matches!(spec.kind, JobKind::Train(_)) {
            return self.submit_train(spec);
        }
        let class = spec.class;
        let seed = spec.seed.unwrap_or(self.engine.seed());
        // Validate the shaping before taking an admission slot, so a
        // bad spec never occupies capacity. The validated session is
        // discarded: every attempt (the first included) builds a fresh
        // one in the job thread so retries are bit-identical re-runs.
        if let Some(cfg) = spec.config {
            self.engine.session_seeded(seed).with_config(cfg)?;
        }
        self.admit_slot(class)?;
        let state = Arc::new(JobState::new(
            self.shared.next_job.fetch_add(1, Ordering::Relaxed),
            class,
        ));
        let hook_state = Arc::clone(&state);
        let mut proto = StreamOptions::default()
            .with_cancel(state.cancel.clone())
            .with_class(class)
            .with_progress(move |p: Progress| {
                hook_state.completed.store(p.completed, Ordering::Relaxed);
                hook_state.total.store(p.total, Ordering::Relaxed);
            });
        proto.deadline = spec.deadline;
        // The job-level deadline is one fixed point in time, shared by
        // every attempt (a retry does not reset the clock).
        // checked_add: an unrepresentable deadline degrades to none.
        let deadline_at = spec.deadline.and_then(|d| Instant::now().checked_add(d));
        let hard = spec.hard_deadline;
        let retry = spec.retry;
        // One scheduler session for all attempts: stats attribution
        // and fault-plan keying stay stable across retries.
        let sched_handle = self.scheduler.handle();

        let thread_state = Arc::clone(&state);
        let shared = Arc::clone(&self.shared);
        let engine = self.engine.clone();
        let config = spec.config;
        let kind = spec.kind;
        let budget = spec.budget;
        let worker = std::thread::spawn(move || {
            // The guard settles the job no matter how this thread
            // exits: a panic inside a round must still free the
            // admission slot and wake waiters (with a Failed outcome),
            // never leave `wait()` blocked forever.
            let mut guard = JobGuard {
                state: thread_state,
                shared: Arc::clone(&shared),
                outcome: None,
            };
            let cancel = guard.state.cancel.clone();
            let mut attempt = 1u32;
            let outcome = loop {
                // A fresh session per attempt: the library and
                // iteration cursor restart from scratch, so a retried
                // run is bit-identical to one that never faulted.
                let mut opts = proto.clone();
                if let Some(at) = deadline_at {
                    opts.deadline = Some(at.saturating_duration_since(Instant::now()));
                    opts.hard_deadline = hard;
                }
                let session = {
                    let mut s = engine.session_seeded(seed);
                    if let Some(cfg) = config {
                        s = match s.with_config(cfg) {
                            Ok(s) => s,
                            // Validated at submit; defensive.
                            Err(e) => break JobOutcome::Failed(e),
                        };
                    }
                    s.with_options(opts).attach_handle(sched_handle.clone())
                };
                let (result, mut report) = run_job(session, kind.clone(), budget);
                report.attempts = attempt;
                match result {
                    Ok(()) if cancel.is_cancelled() => break JobOutcome::Cancelled(report),
                    Ok(()) => break JobOutcome::Completed(report),
                    Err(PpError::DeadlineExceeded { .. }) => {
                        break JobOutcome::TimedOut { partial: report }
                    }
                    Err(PpError::Rejected { reason }) => {
                        break JobOutcome::Rejected {
                            reason,
                            partial: report,
                        }
                    }
                    Err(e)
                        if e.is_transient()
                            && attempt < retry.max_attempts
                            && !cancel.is_cancelled() =>
                    {
                        attempt += 1;
                        lock_counters(&shared).retries += 1;
                        // Bounded exponential backoff, slept in small
                        // slices so cancellation and a passing hard
                        // deadline interrupt the wait instead of
                        // stacking on top of it.
                        let until = Instant::now() + retry.delay_before(attempt);
                        let interrupted = loop {
                            if cancel.is_cancelled() {
                                break Some(JobOutcome::Cancelled(report.clone()));
                            }
                            if hard && deadline_at.is_some_and(|at| Instant::now() > at) {
                                break Some(JobOutcome::TimedOut {
                                    partial: report.clone(),
                                });
                            }
                            let left = until.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break None;
                            }
                            std::thread::sleep(left.min(Duration::from_millis(5)));
                        };
                        if let Some(outcome) = interrupted {
                            break outcome;
                        }
                    }
                    Err(e) => break JobOutcome::Failed(e),
                }
            };
            guard.outcome = Some(outcome);
        });
        Ok(self.register(state, worker))
    }

    /// Takes (or refuses) a per-class admission slot.
    fn admit_slot(&self, class: QosClass) -> Result<(), PpError> {
        let mut c = lock_counters(&self.shared);
        let depth = c.active[class.index()];
        let limit = self.shared.job_limits.limit(class) as u64;
        if depth >= limit {
            c.rejected[class.index()] += 1;
            return Err(PpError::Rejected {
                reason: format!("{class} job queue is full ({depth} in flight, limit {limit})"),
            });
        }
        c.active[class.index()] += 1;
        c.submitted[class.index()] += 1;
        Ok(())
    }

    /// Tracks an admitted job's thread and hands the caller its handle.
    fn register(&self, state: Arc<JobState>, worker: JoinHandle<()>) -> JobHandle {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap terminal jobs so a long-lived service doesn't accumulate
        // one join handle per job ever submitted (dropping a finished
        // handle just releases it; active jobs stay tracked for Drop).
        jobs.retain(|(_, worker)| !worker.is_finished());
        jobs.push((state.cancel.clone(), worker));
        drop(jobs);
        JobHandle { state }
    }

    /// Admits and runs a [`JobKind::Train`] job: a preemptible,
    /// resumable epoch loop on a dedicated thread, under the same
    /// admission gate, retry policy, deadline clock and guard
    /// settlement as generation jobs.
    ///
    /// The driver checkpoints after every epoch and *parks* between
    /// epochs while any strictly-higher QoS class has sampling
    /// submissions in flight — training is the canonical scavenger
    /// workload, so interactive and batch tenants reclaim the machine
    /// at epoch granularity. A transient failure (worker panic, I/O)
    /// retries under the spec's [`crate::RetryPolicy`], and the retry
    /// *resumes from the last checkpoint* rather than epoch 0 — the
    /// attempt re-prepares the run from the store, which is also what
    /// makes a process restart resumable.
    fn submit_train(&self, spec: JobSpec) -> Result<JobHandle, PpError> {
        let JobKind::Train(train_spec) = spec.kind else {
            // Guarded by the caller; defensive.
            return Err(PpError::Config("submit_train needs a train spec".into()));
        };
        let store = self.store.clone().ok_or_else(|| {
            PpError::Config(
                "train jobs need an artifact store: build the service with \
                 ServiceOptions::store"
                    .into(),
            )
        })?;
        train_spec.validate()?;
        if spec.config.is_some() {
            return Err(PpError::Config(
                "train jobs do not take request-shaping config overrides".into(),
            ));
        }
        let class = spec.class;
        let seed = spec.seed.unwrap_or(self.engine.seed());
        self.admit_slot(class)?;
        let state = Arc::new(JobState::new(
            self.shared.next_job.fetch_add(1, Ordering::Relaxed),
            class,
        ));
        // The same progress plumbing generation uses, fed at epoch
        // granularity: JobHandle::progress reports epochs done / total.
        let hook_state = Arc::clone(&state);
        let progress: ProgressHook = Arc::new(move |p: Progress| {
            hook_state.completed.store(p.completed, Ordering::Relaxed);
            hook_state.total.store(p.total, Ordering::Relaxed);
        });
        let deadline_at = spec.deadline.and_then(|d| Instant::now().checked_add(d));
        let hard = spec.hard_deadline;
        let retry = spec.retry;
        // One scheduler session for all attempts: fault-plan keying and
        // panic accounting stay stable across retries, as for sampling.
        let sched_handle = self.scheduler.handle();

        let thread_state = Arc::clone(&state);
        let shared = Arc::clone(&self.shared);
        let engine = self.engine.clone();
        let worker = std::thread::spawn(move || {
            let mut guard = JobGuard {
                state: thread_state,
                shared: Arc::clone(&shared),
                outcome: None,
            };
            let cancel = guard.state.cancel.clone();
            let mut attempt = 1u32;
            let outcome = loop {
                let exit = run_train_attempt(
                    &engine,
                    &*store,
                    &train_spec,
                    seed,
                    &sched_handle,
                    &cancel,
                    deadline_at,
                    hard,
                    class,
                    &progress,
                );
                match exit {
                    Ok(TrainExit::Completed(summary)) if cancel.is_cancelled() => {
                        break JobOutcome::Cancelled(train_report(summary, attempt))
                    }
                    Ok(TrainExit::Completed(summary)) => {
                        break JobOutcome::Completed(train_report(summary, attempt))
                    }
                    Ok(TrainExit::Cancelled(summary)) => {
                        break JobOutcome::Cancelled(train_report(summary, attempt))
                    }
                    // The partial report carries the summary of the
                    // last *checkpointed* epoch — exactly what a
                    // follow-up job would resume from.
                    Ok(TrainExit::TimedOut(summary)) => {
                        break JobOutcome::TimedOut {
                            partial: train_report(summary, attempt),
                        }
                    }
                    Err(e)
                        if e.is_transient()
                            && attempt < retry.max_attempts
                            && !cancel.is_cancelled() =>
                    {
                        attempt += 1;
                        lock_counters(&shared).retries += 1;
                        // Bounded exponential backoff in cancellable
                        // slices, mirroring the generation retry loop.
                        // An interruption mid-backoff still resolves
                        // typed; the empty report (train: None) says no
                        // new checkpoint came out of the failed attempt.
                        let until = Instant::now() + retry.delay_before(attempt);
                        let interrupted = loop {
                            if cancel.is_cancelled() {
                                break Some(JobOutcome::Cancelled(empty_train_report(attempt)));
                            }
                            if hard && deadline_at.is_some_and(|at| Instant::now() > at) {
                                break Some(JobOutcome::TimedOut {
                                    partial: empty_train_report(attempt),
                                });
                            }
                            let left = until.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break None;
                            }
                            std::thread::sleep(left.min(Duration::from_millis(5)));
                        };
                        if let Some(outcome) = interrupted {
                            break outcome;
                        }
                    }
                    Err(e) => break JobOutcome::Failed(e),
                }
            };
            guard.outcome = Some(outcome);
        });
        Ok(self.register(state, worker))
    }
}

/// Settles a job on every exit path of its thread — including panics,
/// where the stored outcome is still `None` and a `Failed` terminal is
/// synthesised so the admission slot frees and `wait()` returns.
struct JobGuard {
    state: Arc<JobState>,
    shared: Arc<ServiceShared>,
    outcome: Option<JobOutcome>,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        let outcome = self.outcome.take().unwrap_or_else(|| {
            JobOutcome::Failed(PpError::Model(
                "job thread panicked before reaching a terminal outcome".into(),
            ))
        });
        // `unwrap_or_else(into_inner)`: these locks must settle the job
        // even when a panic elsewhere poisoned them — panicking here
        // would abort the process mid-unwind.
        {
            let mut c = lock_counters(&self.shared);
            c.active[self.state.class.index()] -= 1;
            c.finished[self.state.class.index()] += 1;
        }
        self.state.settle(outcome);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let mut jobs =
            std::mem::take(&mut *self.jobs.lock().unwrap_or_else(PoisonError::into_inner));
        for (cancel, _) in &jobs {
            cancel.cancel();
        }
        for (_, worker) in jobs.drain(..) {
            let _ = worker.join();
        }
        // The scheduler field drops after this, joining its pool.
    }
}

fn counts(raw: &[u64; 3]) -> ClassCounts {
    ClassCounts {
        interactive: raw[0],
        batch: raw[1],
        best_effort: raw[2],
    }
}

/// Truncates `request` to at most `budget` jobs (sample budgets are
/// per-job intent: the front door enforces them by shrinking the
/// request, never by guessing inside the round). Shared with the
/// fleet router, which enforces budgets identically per replica.
pub(crate) fn truncated(request: GenerationRequest, budget: Option<usize>) -> GenerationRequest {
    match budget {
        Some(b) if request.jobs().len() > b => {
            let mut jobs = request.jobs().clone();
            jobs.truncate(b);
            GenerationRequest::new(jobs, request.seed())
        }
        _ => request,
    }
}

/// Runs the job's rounds against a borrowed session, so callers that
/// need the session *after* the rounds (the fleet router persists
/// affinity sessions via PPSQ before reporting) share one definition
/// of what each [`JobKind`] does. Returns the per-round stats for
/// iterative kinds; the session's own counters and library carry the
/// results.
pub(crate) fn run_rounds(
    session: &mut Session,
    kind: JobKind,
    budget: Option<usize>,
) -> (Result<(), PpError>, Vec<IterationStats>) {
    let mut iterations = Vec::new();
    let result = (|| -> Result<(), PpError> {
        match kind {
            JobKind::Initial => {
                let request = truncated(session.initial_request(), budget);
                session.run_request(&request)?;
            }
            JobKind::Raw(request) => {
                let request = truncated(request, budget);
                session.run_request(&request)?;
            }
            JobKind::Iterative { iterations: n } => {
                let request = truncated(session.initial_request(), budget);
                session.run_request(&request)?;
                session.seed_starters();
                for _ in 0..n {
                    if session.options().cancel.is_cancelled() {
                        break;
                    }
                    if budget.is_some_and(|b| session.generated_total() >= b) {
                        break;
                    }
                    iterations.extend(session.iterate(1)?);
                }
            }
            // Train jobs never reach the round runner: the service
            // drives them through a dedicated epoch loop, and the
            // fleet rejects them at submission.
            JobKind::Train(_) => {
                return Err(PpError::Config(
                    "train jobs do not run generation rounds".into(),
                ))
            }
        }
        Ok(())
    })();
    (result, iterations)
}

/// Runs the job's rounds. The report is built from the session on
/// every path — success *and* failure — so mid-run errors (a scheduler
/// rejection after eight good rounds, say) never discard the work that
/// already landed in the library.
pub(crate) fn run_job(
    mut session: Session,
    kind: JobKind,
    budget: Option<usize>,
) -> (Result<(), PpError>, JobReport) {
    let (result, iterations) = run_rounds(&mut session, kind, budget);
    let report = JobReport {
        generated: session.generated_total(),
        legal: session.legal_total(),
        attempts: 1,
        iterations,
        library: session.into_library(),
        train: None,
    };
    (result, report)
}

/// How one training attempt ended (errors travel separately so the
/// retry loop can classify them).
enum TrainExit {
    Completed(TrainSummary),
    Cancelled(TrainSummary),
    TimedOut(TrainSummary),
}

/// The report of a training job: no generation counters, the summary
/// carries everything.
fn train_report(summary: TrainSummary, attempts: u32) -> JobReport {
    JobReport {
        generated: 0,
        legal: 0,
        attempts,
        iterations: Vec::new(),
        library: PatternLibrary::new(),
        train: Some(summary),
    }
}

/// A report for a train job interrupted before any attempt produced a
/// summary (cancel or deadline during retry backoff).
fn empty_train_report(attempts: u32) -> JobReport {
    JobReport {
        generated: 0,
        legal: 0,
        attempts,
        iterations: Vec::new(),
        library: PatternLibrary::new(),
        train: None,
    }
}

/// Whether any class strictly higher-priority than `class` has sampling
/// submissions in flight — the parking signal for preemptible training.
fn higher_class_busy(stats: &SchedulerStats, class: QosClass) -> bool {
    QosClass::ALL
        .iter()
        .take(class.index())
        .any(|&c| stats.queued.get(c) > 0)
}

/// How often a parked train job re-checks the scheduler's queues (and
/// its own cancel/deadline state).
const PREEMPT_POLL: Duration = Duration::from_millis(2);

/// One training attempt: prepare (fresh or resumed from the last
/// checkpoint), then per epoch — park while higher classes are busy,
/// consume any injected fault keyed on the epoch ordinal, run the
/// epoch under `catch_unwind` (a panic in the math is isolated to this
/// job and surfaces as transient [`PpError::WorkerPanic`]), checkpoint,
/// and report epoch-granular progress.
#[allow(clippy::too_many_arguments)]
fn run_train_attempt(
    engine: &Engine,
    store: &dyn ArtifactStore,
    spec: &TrainSpec,
    seed: u64,
    sched: &SchedulerHandle,
    cancel: &CancelToken,
    deadline_at: Option<Instant>,
    hard: bool,
    class: QosClass,
    progress: &ProgressHook,
) -> Result<TrainExit, PpError> {
    let mut run = TrainRun::prepare(engine, store, spec, seed)?;
    let report_progress = |run: &TrainRun| {
        progress(Progress {
            completed: run.epochs_done() as usize,
            total: run.epochs_total() as usize,
        });
    };
    report_progress(&run);
    while !run.is_done() {
        if cancel.is_cancelled() {
            return Ok(TrainExit::Cancelled(run.summary()));
        }
        if hard && deadline_at.is_some_and(|at| Instant::now() > at) {
            return Ok(TrainExit::TimedOut(run.summary()));
        }
        // Preemption point: park while interactive/batch tenants have
        // sampling in flight. One episode counts once, however long.
        let mut parked = false;
        while higher_class_busy(&sched.stats(), class) {
            if cancel.is_cancelled() {
                return Ok(TrainExit::Cancelled(run.summary()));
            }
            if hard && deadline_at.is_some_and(|at| Instant::now() > at) {
                return Ok(TrainExit::TimedOut(run.summary()));
            }
            if !parked {
                parked = true;
                run.note_preemption();
            }
            std::thread::sleep(PREEMPT_POLL);
        }
        // Chaos hook, keyed on (session, epoch ordinal) — the train
        // analogue of the sampling path's (session, slot ordinal).
        match sched.take_fault(u64::from(run.epochs_done())) {
            Some(Fault::PanicAt { .. }) => {
                return Err(PpError::WorkerPanic {
                    detail: format!(
                        "injected fault: worker panic (train epoch {})",
                        run.epochs_done()
                    ),
                })
            }
            Some(Fault::ErrAt { .. }) => {
                return Err(PpError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!(
                        "injected transient i/o fault (train epoch {})",
                        run.epochs_done()
                    ),
                )))
            }
            Some(Fault::StallFor { duration, .. }) => std::thread::sleep(duration),
            None => {}
        }
        let epoch = run.epochs_done();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.run_epoch())) {
            Ok(Ok(_report)) => {}
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                // The run may hold mid-epoch weights now; the retry
                // re-prepares from the last checkpoint, discarding them.
                return Err(PpError::WorkerPanic {
                    detail: format!("train epoch {epoch} panicked"),
                });
            }
        }
        run.checkpoint(store)?;
        report_progress(&run);
    }
    run.finish(store)?;
    Ok(TrainExit::Completed(run.summary()))
}

/// The shared terminal-state cell behind a [`JobHandle`]: the service
/// settles it from a per-job thread, the fleet router from replica
/// runners — the waiting side is identical either way.
pub(crate) struct JobState {
    pub(crate) id: u64,
    pub(crate) class: QosClass,
    pub(crate) cancel: CancelToken,
    pub(crate) completed: AtomicUsize,
    pub(crate) total: AtomicUsize,
    pub(crate) outcome: Mutex<Option<JobOutcome>>,
    pub(crate) done: Condvar,
}

impl JobState {
    /// A fresh, unsettled job state.
    pub(crate) fn new(id: u64, class: QosClass) -> JobState {
        JobState {
            id,
            class,
            cancel: CancelToken::new(),
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Stores the terminal outcome and wakes waiters — first writer
    /// wins, so racing settlement paths (a replica-loss sweep vs. the
    /// runner that was executing the job) can both call this safely.
    pub(crate) fn settle(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(outcome);
            drop(slot);
            self.done.notify_all();
        }
    }
}

/// Where a submitted job currently stands.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted; rounds are running (or queued at the scheduler).
    Running,
    /// A terminal [`JobOutcome`] is ready ([`JobHandle::wait`] returns
    /// it without blocking).
    Done,
}

/// The caller's side of one submitted job: poll, block, meter, cancel.
///
/// The handle is detachable — dropping it neither cancels nor leaks
/// the job (the service still runs and accounts it).
pub struct JobHandle {
    state: Arc<JobState>,
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.state.id)
            .field("class", &self.state.class)
            .field("status", &self.poll())
            .finish()
    }
}

impl JobHandle {
    /// Wraps a shared job state — the fleet router hands out the same
    /// handle type the service does, so callers poll/wait/cancel
    /// identically whichever front door admitted the job.
    pub(crate) fn from_state(state: Arc<JobState>) -> JobHandle {
        JobHandle { state }
    }

    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The job's QoS class.
    pub fn class(&self) -> QosClass {
        self.state.class
    }

    /// Non-blocking status check.
    pub fn poll(&self) -> JobStatus {
        if self
            .state
            .outcome
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
        {
            JobStatus::Done
        } else {
            JobStatus::Running
        }
    }

    /// Sampling progress of the job's active round (multi-round jobs
    /// report the round in flight).
    pub fn progress(&self) -> Progress {
        Progress {
            completed: self.state.completed.load(Ordering::Relaxed),
            total: self.state.total.load(Ordering::Relaxed),
        }
    }

    /// Requests cooperative cancellation: the job stops at the
    /// scheduler's next slot-admission point and resolves to
    /// [`JobOutcome::Cancelled`] with whatever it finished.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Blocks until the job reaches its terminal outcome and returns
    /// it.
    pub fn wait(self) -> JobOutcome {
        let mut outcome = self
            .state
            .outcome
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(terminal) = outcome.take() {
                return terminal;
            }
            outcome = self
                .state
                .done
                .wait(outcome)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks for at most `timeout` for the terminal outcome. On
    /// timeout the handle comes back unchanged (`Err`), so a caller
    /// can bound every wait on a possibly-wedged job without
    /// forfeiting the ability to poll, cancel, or wait again.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobOutcome, JobHandle> {
        let deadline = Instant::now() + timeout;
        let mut outcome = self
            .state
            .outcome
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(terminal) = outcome.take() {
                return Ok(terminal);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                drop(outcome);
                return Err(self);
            }
            outcome = self
                .state
                .done
                .wait_timeout(outcome, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// What a completed (or cancelled-with-partial-results) job produced.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Samples generated across all rounds.
    pub generated: usize,
    /// Samples that passed validation (duplicates included, matching
    /// the paper's Table I accounting).
    pub legal: usize,
    /// How many attempts the job took (1 = no retry was needed; see
    /// [`crate::RetryPolicy`]). The report's results come from the last
    /// attempt alone — earlier, faulted attempts contribute nothing.
    pub attempts: u32,
    /// Per-iteration statistics for [`JobKind::Iterative`] jobs.
    pub iterations: Vec<IterationStats>,
    /// The library the job grew.
    pub library: PatternLibrary,
    /// Training summary, for [`JobKind::Train`] jobs (`None` on
    /// generation kinds): epochs done, checkpoint/state keys, parent
    /// lineage, resume/preemption counts.
    pub train: Option<TrainSummary>,
}

/// The single terminal state of a submitted job.
///
/// Exactly one of these is produced per [`JobHandle`]; `Failed` wraps
/// the typed [`PpError`], whose `source()` chain reaches the root
/// cause (down to `io::Error` for persistence failures).
#[non_exhaustive]
#[derive(Debug)]
pub enum JobOutcome {
    /// Every round ran; the report carries the full results.
    Completed(JobReport),
    /// Cancelled cooperatively; the report carries the partial
    /// results that were already admitted.
    Cancelled(JobReport),
    /// Admitted by the service but refused downstream (the scheduler's
    /// per-class sampling queue was at its bound when a round
    /// submitted). Rounds that completed before the refusal are not
    /// thrown away: `partial` carries them, so a caller resubmitting
    /// can keep the work already paid for.
    Rejected {
        /// Which bound overflowed, as reported by admission control.
        reason: String,
        /// Results of the rounds that completed before the refusal
        /// (empty when the very first round was refused).
        partial: JobReport,
    },
    /// The job's hard deadline ([`JobSpec::with_hard_deadline`]) passed
    /// before it finished: the scheduler cancelled the work between
    /// micro-batches and the rounds that completed in time survive in
    /// `partial`. Timed-out jobs never retry — the deadline is a
    /// property of the request, not a transient fault.
    TimedOut {
        /// Results of the rounds that beat the deadline (empty when
        /// the very first round timed out).
        partial: JobReport,
    },
    /// A round failed; the wrapped error's `source()` chain names the
    /// root cause.
    Failed(PpError),
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Completed(r) => write!(
                f,
                "completed: {} generated, {} legal, {} in library",
                r.generated,
                r.legal,
                r.library.len()
            ),
            JobOutcome::Cancelled(r) => write!(
                f,
                "cancelled: {} generated, {} legal before the stop",
                r.generated, r.legal
            ),
            JobOutcome::Rejected { reason, partial } => write!(
                f,
                "rejected: {reason} ({} generated, {} legal kept from earlier rounds)",
                partial.generated, partial.legal
            ),
            JobOutcome::TimedOut { partial } => write!(
                f,
                "timed out: {} generated, {} legal before the deadline",
                partial.generated, partial.legal
            ),
            JobOutcome::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

impl JobOutcome {
    /// Whether the job ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The report, for outcomes that carry one (`Completed`,
    /// `Cancelled`, and `Rejected`/`TimedOut` partial rounds).
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobOutcome::Completed(r)
            | JobOutcome::Cancelled(r)
            | JobOutcome::Rejected { partial: r, .. }
            | JobOutcome::TimedOut { partial: r } => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into its report, if it carries one.
    pub fn into_report(self) -> Option<JobReport> {
        match self {
            JobOutcome::Completed(r)
            | JobOutcome::Cancelled(r)
            | JobOutcome::Rejected { partial: r, .. }
            | JobOutcome::TimedOut { partial: r } => Some(r),
            _ => None,
        }
    }

    /// The failure, for `Failed` outcomes (its `source()` chain
    /// reaches the root cause).
    pub fn error(&self) -> Option<&PpError> {
        match self {
            JobOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::jobs::JobSet;
    use pp_pdk::SynthNode;
    use std::time::Duration;

    fn tiny_service(job_limits: QueueLimits) -> Service {
        let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
            .seed(3)
            .untrained_engine()
            .expect("tiny config is valid");
        Service::new(
            &engine,
            ServiceOptions {
                threads: 2,
                job_limits,
                ..Default::default()
            },
        )
    }

    #[test]
    fn initial_job_matches_a_solo_session() {
        let service = tiny_service(QueueLimits::default());
        let mut solo = service.engine().session_seeded(7);
        let (generated, legal) = solo.initial_generation().expect("solo runs");
        let handle = service
            .submit(JobSpec::initial().with_seed(7))
            .expect("admitted");
        let outcome = handle.wait();
        assert!(outcome.is_completed(), "outcome was: {outcome}");
        let report = outcome.into_report().expect("completed carries a report");
        assert_eq!((report.generated, report.legal), (generated, legal));
        assert_eq!(report.library.patterns(), solo.library().patterns());
        assert!(report.iterations.is_empty());
        let stats = service.stats();
        assert_eq!(stats.finished.get(QosClass::Batch), 1);
        assert_eq!(stats.active.total(), 0);
    }

    #[test]
    fn iterative_job_matches_a_solo_session() {
        let service = tiny_service(QueueLimits::default());
        let mut solo = service.engine().session_seeded(11);
        solo.initial_generation().expect("solo runs");
        solo.seed_starters();
        let solo_stats = solo.iterate(2).expect("solo iterates");
        let handle = service
            .submit(JobSpec::iterative(2).with_seed(11))
            .expect("admitted");
        let report = handle.wait().into_report().expect("job completes");
        assert_eq!(report.iterations, solo_stats);
        assert_eq!(report.library.patterns(), solo.library().patterns());
    }

    #[test]
    fn budget_truncates_single_round_jobs() {
        let service = tiny_service(QueueLimits::default());
        let handle = service
            .submit(JobSpec::initial().with_budget(5))
            .expect("admitted");
        let report = handle.wait().into_report().expect("job completes");
        assert_eq!(report.generated, 5, "budget must truncate the request");
    }

    #[test]
    fn job_admission_rejects_and_recovers() {
        let service = tiny_service(QueueLimits {
            interactive: 1,
            batch: 8,
            best_effort: 8,
        });
        let slow = service
            .submit(JobSpec::iterative(2).with_class(QosClass::Interactive))
            .expect("first interactive job is admitted");
        // The class is at its bound: the second submit must be refused
        // without touching the first.
        let err = service
            .submit(JobSpec::initial().with_class(QosClass::Interactive))
            .unwrap_err();
        assert!(
            matches!(err, PpError::Rejected { .. }),
            "wrong error: {err}"
        );
        assert!(err.to_string().contains("interactive"), "reason: {err}");
        // Other classes still have room.
        let batch = service.submit(JobSpec::initial()).expect("batch admitted");
        assert!(batch.wait().is_completed());
        // Capacity frees once the slow job resolves; the retry lands.
        assert!(slow.wait().is_completed());
        let retry = service
            .submit(JobSpec::initial().with_class(QosClass::Interactive))
            .expect("slot freed after completion");
        assert!(retry.wait().is_completed());
        let stats = service.stats();
        assert_eq!(stats.rejected.get(QosClass::Interactive), 1);
        assert_eq!(stats.submitted.get(QosClass::Interactive), 2);
    }

    #[test]
    fn cancellation_resolves_to_cancelled_with_partial_results() {
        let service = tiny_service(QueueLimits::default());
        let handle = service.submit(JobSpec::initial()).expect("admitted");
        handle.cancel();
        match handle.wait() {
            JobOutcome::Cancelled(report) => {
                assert!(report.generated < 200, "cancel must stop the round early");
            }
            // The round may already have finished on a fast box; both
            // terminals are legitimate, anything else is not.
            JobOutcome::Completed(_) => {}
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn invalid_shaping_fails_fast_without_taking_a_slot() {
        let service = tiny_service(QueueLimits::default());
        let mut bad = PipelineConfig::tiny();
        bad.variations = 0;
        let err = service
            .submit(JobSpec::initial().with_config(bad))
            .unwrap_err();
        assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
        assert_eq!(service.stats().submitted.total(), 0);
    }

    /// A panic inside a round must still settle the job: the waiter
    /// gets a `Failed` outcome (never a deadlock) and the class's
    /// admission slot frees for the next tenant.
    #[test]
    fn panicking_job_settles_with_failed_and_frees_the_slot() {
        struct PanicSampler;
        impl crate::stages::Sampler for PanicSampler {
            fn sample(
                &self,
                _jobs: &JobSet,
                _seed: u64,
            ) -> Result<Vec<crate::pipeline::RawSample>, PpError> {
                panic!("sampler exploded");
            }
        }
        let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
            .sampler(PanicSampler)
            .untrained_engine()
            .expect("tiny config is valid");
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads: 1,
                job_limits: QueueLimits::uniform(1),
                ..Default::default()
            },
        );
        let handle = service.submit(JobSpec::initial()).expect("admitted");
        match handle.wait() {
            JobOutcome::Failed(e) => {
                assert!(e.to_string().contains("panicked"), "wrong error: {e}")
            }
            other => panic!("expected Failed, got: {other}"),
        }
        assert_eq!(service.stats().active.total(), 0, "slot must free");
        // The freed slot admits the next job in the same class.
        let retry = service.submit(JobSpec::initial()).expect("slot freed");
        assert!(matches!(retry.wait(), JobOutcome::Failed(_)));
    }

    /// A deadline too far in the future to represent as an `Instant`
    /// degrades to "no deadline" instead of panicking mid-submit.
    #[test]
    fn unrepresentable_deadlines_do_not_panic() {
        let service = tiny_service(QueueLimits::default());
        let handle = service
            .submit(
                JobSpec::initial()
                    .with_budget(2)
                    .with_deadline(Duration::MAX),
            )
            .expect("admitted");
        let report = handle.wait().into_report().expect("job completes");
        assert_eq!(report.generated, 2);
    }

    #[test]
    fn raw_jobs_run_explicit_requests() {
        let service = tiny_service(QueueLimits::default());
        let starters = service.engine().starters().to_vec();
        let masks = pp_inpaint::MaskSet::Default.masks(service.engine().node().clip());
        let request = GenerationRequest::new(JobSet::cycle(&starters, &masks, 6), 13);
        let handle = service
            .submit(JobSpec::raw(request).with_class(QosClass::BestEffort))
            .expect("admitted");
        let report = handle.wait().into_report().expect("job completes");
        assert_eq!(report.generated, 6);
        let sched = service.scheduler_stats();
        assert_eq!(sched.admitted.get(QosClass::BestEffort), 1);
    }
}
