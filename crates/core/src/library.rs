//! The growing pattern library.

use pp_geometry::{Layout, Signature, SquishPattern};
use pp_metrics::LibraryStats;
use std::collections::HashSet;

/// A deduplicated collection of DR-clean layout patterns.
///
/// Identity is the full squish signature (topology + Δx + Δy), matching
/// the paper's "unique patterns" column.
///
/// # Example
///
/// ```
/// use patternpaint_core::PatternLibrary;
/// use pp_pdk::SynthNode;
///
/// let mut lib = PatternLibrary::new();
/// for p in SynthNode::default().starter_patterns() {
///     assert!(lib.insert(p));
/// }
/// assert_eq!(lib.len(), 20);
/// let stats = lib.stats();
/// assert_eq!(stats.unique, 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternLibrary {
    patterns: Vec<Layout>,
    signatures: HashSet<Signature>,
}

impl PatternLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a library from existing patterns (duplicates dropped).
    pub fn from_patterns<I: IntoIterator<Item = Layout>>(patterns: I) -> Self {
        let mut lib = Self::new();
        for p in patterns {
            lib.insert(p);
        }
        lib
    }

    /// Inserts a pattern; returns `true` when it was new.
    pub fn insert(&mut self, pattern: Layout) -> bool {
        let sig = Signature::of_squish(&SquishPattern::from_layout(&pattern));
        if self.signatures.insert(sig) {
            self.patterns.push(pattern);
            true
        } else {
            false
        }
    }

    /// Whether an identical pattern is already present.
    pub fn contains(&self, pattern: &Layout) -> bool {
        let sig = Signature::of_squish(&SquishPattern::from_layout(pattern));
        self.signatures.contains(&sig)
    }

    /// Number of unique patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The stored patterns, in insertion order.
    pub fn patterns(&self) -> &[Layout] {
        &self.patterns
    }

    /// Diversity statistics (H1, H2, uniqueness) of the library.
    pub fn stats(&self) -> LibraryStats {
        LibraryStats::from_layouts(&self.patterns)
    }
}

impl Extend<Layout> for PatternLibrary {
    fn extend<T: IntoIterator<Item = Layout>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl FromIterator<Layout> for PatternLibrary {
    fn from_iter<T: IntoIterator<Item = Layout>>(iter: T) -> Self {
        Self::from_patterns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;

    fn wire(x: u32) -> Layout {
        let mut l = Layout::new(16, 16);
        l.fill_rect(Rect::new(x, 2, 3, 10));
        l
    }

    #[test]
    fn deduplicates() {
        let mut lib = PatternLibrary::new();
        assert!(lib.insert(wire(2)));
        assert!(!lib.insert(wire(2)));
        assert!(lib.insert(wire(5)));
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn contains_query() {
        let mut lib = PatternLibrary::new();
        lib.insert(wire(2));
        assert!(lib.contains(&wire(2)));
        assert!(!lib.contains(&wire(7)));
    }

    #[test]
    fn from_iterator_collects() {
        let lib: PatternLibrary = (0..4).map(|i| wire(2 + i)).collect();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.stats().unique, 4);
    }

    #[test]
    fn extend_merges() {
        let mut lib = PatternLibrary::from_patterns([wire(2)]);
        lib.extend([wire(2), wire(3)]);
        assert_eq!(lib.len(), 2);
    }
}
