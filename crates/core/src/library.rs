//! The growing pattern library.

use pp_geometry::{Layout, Signature, SquishPattern};
use pp_metrics::{entropy_base2, LibraryStats};
use std::collections::{HashMap, HashSet};

/// A deduplicated collection of DR-clean layout patterns.
///
/// Identity is the full squish signature (topology + Δx + Δy), matching
/// the paper's "unique patterns" column.
///
/// # Example
///
/// ```
/// use patternpaint_core::PatternLibrary;
/// use pp_pdk::SynthNode;
///
/// let mut lib = PatternLibrary::new();
/// for p in SynthNode::default().starter_patterns() {
///     assert!(lib.insert(p));
/// }
/// assert_eq!(lib.len(), 20);
/// let stats = lib.stats();
/// assert_eq!(stats.unique, 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternLibrary {
    patterns: Vec<Layout>,
    signatures: HashSet<Signature>,
    /// Histogram of complexity tuples `(Cx, Cy)` over stored patterns —
    /// the H1 distribution, maintained incrementally on insert so
    /// [`PatternLibrary::stats`] never re-squishes the library.
    complexity_hist: HashMap<(u32, u32), usize>,
    /// Histogram of geometry classes (delta signatures) — the H2
    /// distribution, maintained incrementally like the above.
    geometry_hist: HashMap<Signature, usize>,
}

impl PatternLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a library from existing patterns (duplicates dropped).
    pub fn from_patterns<I: IntoIterator<Item = Layout>>(patterns: I) -> Self {
        let mut lib = Self::new();
        for p in patterns {
            lib.insert(p);
        }
        lib
    }

    /// Inserts a pattern; returns `true` when it was new.
    pub fn insert(&mut self, pattern: Layout) -> bool {
        let squish = SquishPattern::from_layout(&pattern);
        let sig = Signature::of_squish(&squish);
        self.insert_squished(sig, &squish, move || pattern)
    }

    /// Inserts a pattern whose squish form and full signature the caller
    /// already computed (the round tail computes both for DRC and
    /// deduplication, so re-deriving them here was pure waste).
    ///
    /// `layout` is only invoked when the pattern is new — duplicate
    /// admissions never rasterise. Returns `true` when it was new.
    ///
    /// The caller must uphold `signature == Signature::of_squish(squish)`
    /// and `squish == SquishPattern::from_layout(&layout())`; the library
    /// trusts them, and a mismatch corrupts deduplication and the
    /// incremental H1/H2 statistics.
    pub fn insert_squished(
        &mut self,
        signature: Signature,
        squish: &SquishPattern,
        layout: impl FnOnce() -> Layout,
    ) -> bool {
        if self.signatures.insert(signature) {
            *self.complexity_hist.entry(squish.complexity()).or_insert(0) += 1;
            *self
                .geometry_hist
                .entry(Signature::of_deltas(squish))
                .or_insert(0) += 1;
            self.patterns.push(layout());
            true
        } else {
            false
        }
    }

    /// Whether a pattern with this full squish signature is present.
    pub fn contains_signature(&self, signature: Signature) -> bool {
        self.signatures.contains(&signature)
    }

    /// Whether an identical pattern is already present.
    pub fn contains(&self, pattern: &Layout) -> bool {
        let sig = Signature::of_squish(&SquishPattern::from_layout(pattern));
        self.signatures.contains(&sig)
    }

    /// Number of unique patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The stored patterns, in insertion order.
    pub fn patterns(&self) -> &[Layout] {
        &self.patterns
    }

    /// Diversity statistics (H1, H2, uniqueness) of the library.
    ///
    /// Computed from the histograms maintained on insert — O(classes),
    /// not O(patterns × clip²) — so per-iteration stats reporting costs
    /// nothing even on large libraries. Entropy terms are summed in
    /// sorted-count order, making the floats deterministic run to run
    /// (hash-map iteration order is not); values agree with
    /// `LibraryStats::from_layouts` to float rounding.
    pub fn stats(&self) -> LibraryStats {
        let mut complexity: Vec<usize> = self.complexity_hist.values().copied().collect();
        complexity.sort_unstable();
        let mut geometry: Vec<usize> = self.geometry_hist.values().copied().collect();
        geometry.sort_unstable();
        LibraryStats {
            count: self.patterns.len(),
            // Stored patterns are deduplicated by full signature.
            unique: self.patterns.len(),
            h1: entropy_base2(&complexity),
            h2: entropy_base2(&geometry),
        }
    }
}

impl Extend<Layout> for PatternLibrary {
    fn extend<T: IntoIterator<Item = Layout>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl FromIterator<Layout> for PatternLibrary {
    fn from_iter<T: IntoIterator<Item = Layout>>(iter: T) -> Self {
        Self::from_patterns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;

    fn wire(x: u32) -> Layout {
        let mut l = Layout::new(16, 16);
        l.fill_rect(Rect::new(x, 2, 3, 10));
        l
    }

    #[test]
    fn deduplicates() {
        let mut lib = PatternLibrary::new();
        assert!(lib.insert(wire(2)));
        assert!(!lib.insert(wire(2)));
        assert!(lib.insert(wire(5)));
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn contains_query() {
        let mut lib = PatternLibrary::new();
        lib.insert(wire(2));
        assert!(lib.contains(&wire(2)));
        assert!(!lib.contains(&wire(7)));
    }

    #[test]
    fn from_iterator_collects() {
        let lib: PatternLibrary = (0..4).map(|i| wire(2 + i)).collect();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.stats().unique, 4);
    }

    #[test]
    fn extend_merges() {
        let mut lib = PatternLibrary::from_patterns([wire(2)]);
        lib.extend([wire(2), wire(3)]);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn incremental_stats_match_full_recompute() {
        let mut lib = PatternLibrary::new();
        for p in pp_pdk::SynthNode::default().starter_patterns() {
            lib.insert(p);
        }
        lib.insert(wire(2));
        lib.insert(wire(2)); // duplicate: must not touch the histograms
        let inc = lib.stats();
        let full = pp_metrics::LibraryStats::from_layouts(lib.patterns());
        assert_eq!(inc.count, full.count);
        assert_eq!(inc.unique, full.unique);
        assert!((inc.h1 - full.h1).abs() < 1e-9, "{} vs {}", inc.h1, full.h1);
        assert!((inc.h2 - full.h2).abs() < 1e-9, "{} vs {}", inc.h2, full.h2);
    }

    #[test]
    fn insert_squished_skips_rasterise_on_duplicates() {
        let mut lib = PatternLibrary::new();
        let l = wire(4);
        let squish = SquishPattern::from_layout(&l);
        let sig = Signature::of_squish(&squish);
        assert!(lib.insert_squished(sig, &squish, || l.clone()));
        assert!(lib.contains_signature(sig));
        // The duplicate path must never invoke the layout closure.
        assert!(!lib.insert_squished(sig, &squish, || panic!("rasterised a duplicate")));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.patterns()[0], l);
    }
}
