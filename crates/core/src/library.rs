//! The growing pattern library.

use pp_geometry::{read_squish_library, write_squish_library, Layout, Signature, SquishPattern};
use pp_metrics::{entropy_base2, LibraryStats};
use std::collections::{HashMap, HashSet};
use std::io;

/// A deduplicated collection of DR-clean layout patterns.
///
/// Identity is the full squish signature (topology + Δx + Δy), matching
/// the paper's "unique patterns" column.
///
/// # Example
///
/// ```
/// use patternpaint_core::PatternLibrary;
/// use pp_pdk::SynthNode;
///
/// let mut lib = PatternLibrary::new();
/// for p in SynthNode::default().starter_patterns() {
///     assert!(lib.insert(p));
/// }
/// assert_eq!(lib.len(), 20);
/// let stats = lib.stats();
/// assert_eq!(stats.unique, 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternLibrary {
    patterns: Vec<Layout>,
    signatures: HashSet<Signature>,
    /// Histogram of complexity tuples `(Cx, Cy)` over stored patterns —
    /// the H1 distribution, maintained incrementally on insert so
    /// [`PatternLibrary::stats`] never re-squishes the library.
    complexity_hist: HashMap<(u32, u32), usize>,
    /// Histogram of geometry classes (delta signatures) — the H2
    /// distribution, maintained incrementally like the above.
    geometry_hist: HashMap<Signature, usize>,
}

impl PatternLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a library from existing patterns (duplicates dropped).
    pub fn from_patterns<I: IntoIterator<Item = Layout>>(patterns: I) -> Self {
        let mut lib = Self::new();
        for p in patterns {
            lib.insert(p);
        }
        lib
    }

    /// Inserts a pattern; returns `true` when it was new.
    pub fn insert(&mut self, pattern: Layout) -> bool {
        let squish = SquishPattern::from_layout(&pattern);
        let sig = Signature::of_squish(&squish);
        self.insert_squished(sig, &squish, move || pattern)
    }

    /// Inserts a pattern whose squish form and full signature the caller
    /// already computed (the round tail computes both for DRC and
    /// deduplication, so re-deriving them here was pure waste).
    ///
    /// `layout` is only invoked when the pattern is new — duplicate
    /// admissions never rasterise. Returns `true` when it was new.
    ///
    /// The caller must uphold `signature == Signature::of_squish(squish)`
    /// and `squish == SquishPattern::from_layout(&layout())`; the library
    /// trusts them, and a mismatch corrupts deduplication and the
    /// incremental H1/H2 statistics.
    pub fn insert_squished(
        &mut self,
        signature: Signature,
        squish: &SquishPattern,
        layout: impl FnOnce() -> Layout,
    ) -> bool {
        if self.signatures.insert(signature) {
            *self.complexity_hist.entry(squish.complexity()).or_insert(0) += 1;
            *self
                .geometry_hist
                .entry(Signature::of_deltas(squish))
                .or_insert(0) += 1;
            self.patterns.push(layout());
            true
        } else {
            false
        }
    }

    /// Whether a pattern with this full squish signature is present.
    pub fn contains_signature(&self, signature: Signature) -> bool {
        self.signatures.contains(&signature)
    }

    /// Whether an identical pattern is already present.
    pub fn contains(&self, pattern: &Layout) -> bool {
        let sig = Signature::of_squish(&SquishPattern::from_layout(pattern));
        self.signatures.contains(&sig)
    }

    /// Number of unique patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The stored patterns, in insertion order.
    pub fn patterns(&self) -> &[Layout] {
        &self.patterns
    }

    /// Serialises the library in the durable squish form (`PPSQ v1`),
    /// the representation [`crate::Session::save`] persists. Squish →
    /// raster → squish is lossless, so a write/read cycle preserves
    /// pattern contents, insertion order, signatures and statistics
    /// exactly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_squish<W: io::Write>(&self, writer: W) -> io::Result<()> {
        let squishes: Vec<SquishPattern> = self
            .patterns
            .iter()
            .map(SquishPattern::from_layout)
            .collect();
        write_squish_library(&squishes, writer)
    }

    /// Reads a library written by [`PatternLibrary::write_squish`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on corrupt streams or when the stored
    /// stream contains duplicate patterns (a library is deduplicated by
    /// construction, so duplicates mean the artifact was tampered
    /// with), and propagates I/O errors from `reader`.
    pub fn read_squish<R: io::Read>(reader: R) -> io::Result<PatternLibrary> {
        let squishes = read_squish_library(reader)?;
        let mut library = PatternLibrary::new();
        for s in &squishes {
            if !library.insert(s.to_layout()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stored library contains duplicate patterns",
                ));
            }
        }
        Ok(library)
    }

    /// Diversity statistics (H1, H2, uniqueness) of the library.
    ///
    /// Computed from the histograms maintained on insert — O(classes),
    /// not O(patterns × clip²) — so per-iteration stats reporting costs
    /// nothing even on large libraries. Entropy terms are summed in
    /// sorted-count order, making the floats deterministic run to run
    /// (hash-map iteration order is not); values agree with
    /// `LibraryStats::from_layouts` to float rounding.
    pub fn stats(&self) -> LibraryStats {
        let mut complexity: Vec<usize> = self.complexity_hist.values().copied().collect();
        complexity.sort_unstable();
        let mut geometry: Vec<usize> = self.geometry_hist.values().copied().collect();
        geometry.sort_unstable();
        LibraryStats {
            count: self.patterns.len(),
            // Stored patterns are deduplicated by full signature.
            unique: self.patterns.len(),
            h1: entropy_base2(&complexity),
            h2: entropy_base2(&geometry),
        }
    }
}

impl Extend<Layout> for PatternLibrary {
    fn extend<T: IntoIterator<Item = Layout>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl FromIterator<Layout> for PatternLibrary {
    fn from_iter<T: IntoIterator<Item = Layout>>(iter: T) -> Self {
        Self::from_patterns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;
    use proptest::prelude::*;

    fn wire(x: u32) -> Layout {
        let mut l = Layout::new(16, 16);
        l.fill_rect(Rect::new(x, 2, 3, 10));
        l
    }

    #[test]
    fn deduplicates() {
        let mut lib = PatternLibrary::new();
        assert!(lib.insert(wire(2)));
        assert!(!lib.insert(wire(2)));
        assert!(lib.insert(wire(5)));
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn contains_query() {
        let mut lib = PatternLibrary::new();
        lib.insert(wire(2));
        assert!(lib.contains(&wire(2)));
        assert!(!lib.contains(&wire(7)));
    }

    #[test]
    fn from_iterator_collects() {
        let lib: PatternLibrary = (0..4).map(|i| wire(2 + i)).collect();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.stats().unique, 4);
    }

    #[test]
    fn extend_merges() {
        let mut lib = PatternLibrary::from_patterns([wire(2)]);
        lib.extend([wire(2), wire(3)]);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn incremental_stats_match_full_recompute() {
        let mut lib = PatternLibrary::new();
        for p in pp_pdk::SynthNode::default().starter_patterns() {
            lib.insert(p);
        }
        lib.insert(wire(2));
        lib.insert(wire(2)); // duplicate: must not touch the histograms
        let inc = lib.stats();
        let full = pp_metrics::LibraryStats::from_layouts(lib.patterns());
        assert_eq!(inc.count, full.count);
        assert_eq!(inc.unique, full.unique);
        assert!((inc.h1 - full.h1).abs() < 1e-9, "{} vs {}", inc.h1, full.h1);
        assert!((inc.h2 - full.h2).abs() < 1e-9, "{} vs {}", inc.h2, full.h2);
    }

    #[test]
    fn squish_persistence_roundtrip_exact() {
        let mut lib = PatternLibrary::new();
        for p in pp_pdk::SynthNode::default().starter_patterns() {
            lib.insert(p);
        }
        lib.insert(wire(2));
        let mut bytes = Vec::new();
        lib.write_squish(&mut bytes).unwrap();
        let back = PatternLibrary::read_squish(bytes.as_slice()).unwrap();
        assert_eq!(back.patterns(), lib.patterns());
        let (a, b) = (lib.stats(), back.stats());
        assert_eq!((a.count, a.unique), (b.count, b.unique));
        assert_eq!(a.h1.to_bits(), b.h1.to_bits());
        assert_eq!(a.h2.to_bits(), b.h2.to_bits());
        // Tampered streams (duplicated pattern payload) are rejected.
        let solo = PatternLibrary::from_patterns([wire(3)]);
        let mut dup = Vec::new();
        solo.write_squish(&mut dup).unwrap();
        let body = dup[12..].to_vec(); // past "PPSQ v1\n" + count
        dup[8..12].copy_from_slice(&2u32.to_le_bytes());
        dup.extend_from_slice(&body);
        assert!(PatternLibrary::read_squish(dup.as_slice()).is_err());
    }

    proptest::proptest! {
        /// Persistence round-trips bit-exactly for arbitrary rect-soup
        /// libraries *including* degenerate squish forms: full-width /
        /// full-height bars collapse to 1-column or 1-row topologies
        /// (and the loop below forces both plus their combination).
        #[test]
        fn prop_squish_persistence_roundtrips(rects in proptest::collection::vec(
            (0u32..14, 0u32..14, 1u32..16, 1u32..16), 1..8),
            degenerate in proptest::collection::vec(0u32..3, 1..2)) {
            let mut lib = PatternLibrary::new();
            for (x, y, w, h) in rects {
                let mut l = Layout::new(16, 16);
                l.fill_rect(Rect::new(x, y, w.min(16 - x), h.min(16 - y)));
                lib.insert(l);
            }
            // Degenerate members: 1-row, 1-col and 1x1 squish patterns.
            let mut bar_h = Layout::new(16, 16);
            bar_h.fill_rect(Rect::new(0, degenerate[0] % 13, 16, 3));
            lib.insert(bar_h);
            let mut bar_v = Layout::new(16, 16);
            bar_v.fill_rect(Rect::new(degenerate[0] % 13, 0, 3, 16));
            lib.insert(bar_v);
            lib.insert(Layout::new(16, 16)); // empty: 1x1 topology
            let mut full = Layout::new(16, 16);
            full.fill_rect(Rect::new(0, 0, 16, 16)); // full: 1x1 topology
            lib.insert(full);

            let mut bytes = Vec::new();
            lib.write_squish(&mut bytes).unwrap();
            let back = PatternLibrary::read_squish(bytes.as_slice()).unwrap();
            prop_assert_eq!(back.patterns(), lib.patterns());
            for (a, b) in lib.patterns().iter().zip(back.patterns()) {
                let sa = SquishPattern::from_layout(a);
                let sb = SquishPattern::from_layout(b);
                prop_assert_eq!(Signature::of_squish(&sa), Signature::of_squish(&sb));
                prop_assert_eq!(Signature::of_deltas(&sa), Signature::of_deltas(&sb));
            }
            let (sa, sb) = (lib.stats(), back.stats());
            prop_assert_eq!(sa.count, sb.count);
            prop_assert_eq!(sa.unique, sb.unique);
            prop_assert_eq!(sa.h1.to_bits(), sb.h1.to_bits());
            prop_assert_eq!(sa.h2.to_bits(), sb.h2.to_bits());
        }
    }

    #[test]
    fn insert_squished_skips_rasterise_on_duplicates() {
        let mut lib = PatternLibrary::new();
        let l = wire(4);
        let squish = SquishPattern::from_layout(&l);
        let sig = Signature::of_squish(&squish);
        assert!(lib.insert_squished(sig, &squish, || l.clone()));
        assert!(lib.contains_signature(sig));
        // The duplicate path must never invoke the layout closure.
        assert!(!lib.insert_squished(sig, &squish, || panic!("rasterised a duplicate")));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.patterns()[0], l);
    }
}
