//! The pipeline's typed error surface.

use pp_diffusion::ModelError;
use pp_inpaint::MaskError;
use pp_selection::SelectionError;
use std::fmt;
use std::io;

/// Everything that can go wrong constructing or driving a pipeline.
///
/// The generation surface returns these instead of panicking so a
/// service wrapping the pipeline can map bad requests to client errors
/// and infrastructure failures to retries, without crashing the worker.
#[derive(Debug)]
#[non_exhaustive]
pub enum PpError {
    /// An invalid [`crate::PipelineConfig`] or stage parameter.
    Config(String),
    /// An image/clip dimension disagrees with what the pipeline expects.
    Shape {
        /// Which dimension is wrong (e.g. `"model image vs node clip"`).
        what: String,
        /// The expected side length.
        expected: u32,
        /// The side length received.
        actual: u32,
    },
    /// The diffusion model rejected a training or sampling call.
    Model(String),
    /// An I/O failure (weight files, reports).
    Io(io::Error),
    /// A generation request contained no jobs.
    EmptyRequest,
}

impl fmt::Display for PpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PpError::Shape {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch ({what}): expected {expected}, got {actual}"
            ),
            PpError::Model(msg) => write!(f, "model error: {msg}"),
            PpError::Io(e) => write!(f, "i/o error: {e}"),
            PpError::EmptyRequest => write!(f, "generation request contains no jobs"),
        }
    }
}

impl std::error::Error for PpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PpError {
    fn from(e: io::Error) -> Self {
        PpError::Io(e)
    }
}

impl From<ModelError> for PpError {
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::Shape {
                what,
                expected,
                actual,
            } => PpError::Shape {
                what: what.to_string(),
                expected,
                actual,
            },
            ModelError::Empty(_) => PpError::Model(e.to_string()),
        }
    }
}

impl From<SelectionError> for PpError {
    fn from(e: SelectionError) -> Self {
        PpError::Config(e.to_string())
    }
}

impl From<MaskError> for PpError {
    fn from(e: MaskError) -> Self {
        PpError::Config(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PpError::Shape {
            what: "model image vs node clip".into(),
            expected: 32,
            actual: 16,
        };
        assert!(e.to_string().contains("expected 32"));
        assert!(PpError::EmptyRequest.to_string().contains("no jobs"));
        assert!(PpError::Config("variations must be positive".into())
            .to_string()
            .contains("variations"));
    }

    #[test]
    fn model_errors_convert() {
        let e: PpError = ModelError::Shape {
            what: "inpainting image",
            expected: 32,
            actual: 8,
        }
        .into();
        assert!(matches!(
            e,
            PpError::Shape {
                expected: 32,
                actual: 8,
                ..
            }
        ));
        let e: PpError = ModelError::Empty("training corpus").into();
        assert!(matches!(e, PpError::Model(_)));
    }
}
