//! The pipeline's typed error surface.

use crate::artifact::ArtifactError;
use pp_diffusion::ModelError;
use pp_inpaint::MaskError;
use pp_selection::SelectionError;
use std::fmt;
use std::io;

/// Everything that can go wrong constructing or driving a pipeline.
///
/// The generation surface returns these instead of panicking so a
/// service wrapping the pipeline can map bad requests to client errors
/// and infrastructure failures to retries, without crashing the worker.
///
/// Failures that wrap a lower layer ([`PpError::Io`],
/// [`PpError::Checkpoint`], [`PpError::Artifact`]) expose it through
/// [`std::error::Error::source`], so an engine-level failure chains all
/// the way down to the root `io::Error`:
///
/// ```
/// use patternpaint_core::{ArtifactError, PpError};
/// use std::error::Error as _;
///
/// let root = std::io::Error::new(std::io::ErrorKind::Other, "disk on fire");
/// let e = PpError::from(ArtifactError::Io { path: "model.ppck".into(), source: root });
/// let chained = e.source().and_then(|a| a.source()).expect("two hops");
/// assert!(chained.to_string().contains("disk on fire"));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum PpError {
    /// An invalid [`crate::PipelineConfig`] or stage parameter.
    Config(String),
    /// An image/clip dimension disagrees with what the pipeline expects.
    Shape {
        /// Which dimension is wrong (e.g. `"model image vs node clip"`).
        what: String,
        /// The expected side length.
        expected: u32,
        /// The side length received.
        actual: u32,
    },
    /// The diffusion model rejected a training or sampling call.
    Model(String),
    /// An I/O failure (weight files, reports).
    Io(io::Error),
    /// A generation request contained no jobs.
    EmptyRequest,
    /// Admission control refused the work: a per-class queue (scheduler
    /// submissions or service jobs) was already at its bound. The
    /// request was not enqueued; retrying after in-flight work drains
    /// is the expected recovery.
    Rejected {
        /// Which bound overflowed and at what occupancy.
        reason: String,
    },
    /// A model checkpoint failed to serialise, parse or validate
    /// (truncation, bad magic/version, shape or checksum mismatch).
    Checkpoint(ModelError),
    /// The artifact store under an engine/session save or resume
    /// failed.
    Artifact(ArtifactError),
    /// A scheduler worker panicked while running this submission's
    /// micro-batch. The panic was contained to the one submission (the
    /// worker respawns; other tenants are untouched) and is considered
    /// transient: a [`crate::RetryPolicy`] re-attempts jobs that fail
    /// this way.
    WorkerPanic {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A hard deadline passed before the work finished; the submission
    /// was cooperatively cancelled between micro-batches. Jobs
    /// resolving through the service surface this as
    /// [`crate::JobOutcome::TimedOut`] with their partial results.
    DeadlineExceeded {
        /// How far past the deadline enforcement happened.
        late_by: std::time::Duration,
    },
}

impl fmt::Display for PpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PpError::Shape {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch ({what}): expected {expected}, got {actual}"
            ),
            PpError::Model(msg) => write!(f, "model error: {msg}"),
            PpError::Io(e) => write!(f, "i/o error: {e}"),
            PpError::EmptyRequest => write!(f, "generation request contains no jobs"),
            PpError::Rejected { reason } => write!(f, "admission rejected: {reason}"),
            PpError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            PpError::Artifact(e) => write!(f, "artifact error: {e}"),
            PpError::WorkerPanic { detail } => {
                write!(f, "scheduler worker panicked: {detail}")
            }
            PpError::DeadlineExceeded { late_by } => {
                write!(f, "hard deadline exceeded ({late_by:?} past it)")
            }
        }
    }
}

impl PpError {
    /// Whether the failure is *transient* — infrastructure damage that
    /// a clean re-run can reasonably outlive — as opposed to a property
    /// of the request itself. This is the classification
    /// [`crate::RetryPolicy`] keys on: worker panics and I/O failures
    /// retry; config, shape, admission and deadline failures do not
    /// (re-running an invalid or expired request cannot fix it).
    pub fn is_transient(&self) -> bool {
        matches!(self, PpError::WorkerPanic { .. } | PpError::Io(_))
    }
}

impl std::error::Error for PpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PpError::Io(e) => Some(e),
            PpError::Checkpoint(e) => Some(e),
            PpError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PpError {
    fn from(e: io::Error) -> Self {
        PpError::Io(e)
    }
}

impl From<ModelError> for PpError {
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::Shape {
                what,
                expected,
                actual,
            } => PpError::Shape {
                what: what.to_string(),
                expected,
                actual,
            },
            ModelError::Empty(_) => PpError::Model(e.to_string()),
            // Checkpoint-surface failures keep their typed form so the
            // source() chain reaches the io root cause.
            ModelError::Io { .. } | ModelError::Corrupt { .. } => PpError::Checkpoint(e),
            _ => PpError::Model(e.to_string()),
        }
    }
}

impl From<ArtifactError> for PpError {
    fn from(e: ArtifactError) -> Self {
        PpError::Artifact(e)
    }
}

impl From<SelectionError> for PpError {
    fn from(e: SelectionError) -> Self {
        PpError::Config(e.to_string())
    }
}

impl From<MaskError> for PpError {
    fn from(e: MaskError) -> Self {
        PpError::Config(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PpError::Shape {
            what: "model image vs node clip".into(),
            expected: 32,
            actual: 16,
        };
        assert!(e.to_string().contains("expected 32"));
        assert!(PpError::EmptyRequest.to_string().contains("no jobs"));
        assert!(PpError::Config("variations must be positive".into())
            .to_string()
            .contains("variations"));
    }

    #[test]
    fn source_chains_reach_the_io_root() {
        use std::error::Error as _;
        // Engine-level artifact failure → ArtifactError → io::Error.
        let e: PpError = ArtifactError::Io {
            path: "store/model.ppck".into(),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "read-only volume"),
        }
        .into();
        let artifact = e.source().expect("PpError::Artifact has a source");
        let root = artifact.source().expect("ArtifactError::Io has a source");
        assert!(root.to_string().contains("read-only volume"));

        // Checkpoint failure → ModelError → io::Error.
        let e: PpError = ModelError::Io {
            section: "weights: tensor 3 of 42".into(),
            source: io::Error::new(io::ErrorKind::UnexpectedEof, "stream ran dry"),
        }
        .into();
        assert!(matches!(e, PpError::Checkpoint(_)));
        let model = e.source().expect("PpError::Checkpoint has a source");
        assert!(model.to_string().contains("tensor 3 of 42"));
        let root = model.source().expect("ModelError::Io has a source");
        assert!(root.to_string().contains("stream ran dry"));

        // Corrupt checkpoints are typed but have no io root.
        let e: PpError = ModelError::Corrupt {
            section: "checkpoint: checksum".into(),
            detail: "mismatch".into(),
        }
        .into();
        assert!(e.source().expect("checkpoint source").source().is_none());
    }

    #[test]
    fn transience_classifies_retryable_failures() {
        assert!(PpError::WorkerPanic {
            detail: "sampler exploded".into()
        }
        .is_transient());
        assert!(PpError::Io(io::Error::new(io::ErrorKind::Interrupted, "blip")).is_transient());
        for e in [
            PpError::Config("bad".into()),
            PpError::EmptyRequest,
            PpError::Model("oops".into()),
            PpError::Rejected {
                reason: "full".into(),
            },
            PpError::DeadlineExceeded {
                late_by: std::time::Duration::from_millis(3),
            },
        ] {
            assert!(!e.is_transient(), "{e} must not retry");
        }
    }

    #[test]
    fn fault_variants_display_usefully() {
        use std::error::Error as _;
        let e = PpError::WorkerPanic {
            detail: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("panicked"), "display was: {e}");
        assert!(e.source().is_none(), "WorkerPanic is a leaf");
        let e = PpError::DeadlineExceeded {
            late_by: std::time::Duration::from_millis(5),
        };
        assert!(e.to_string().contains("deadline"), "display was: {e}");
        assert!(e.source().is_none(), "DeadlineExceeded is a leaf");
    }

    #[test]
    fn model_errors_convert() {
        let e: PpError = ModelError::Shape {
            what: "inpainting image",
            expected: 32,
            actual: 8,
        }
        .into();
        assert!(matches!(
            e,
            PpError::Shape {
                expected: 32,
                actual: 8,
                ..
            }
        ));
        let e: PpError = ModelError::Empty("training corpus").into();
        assert!(matches!(e, PpError::Model(_)));
    }
}
