//! The DiffPattern baseline: topology diffusion + solver legalization.

use crate::cup::{legalize_and_check, BaselineOutcome};
use crate::topo::{layout_to_topo_image, TOPO_SIDE};
use pp_diffusion::{BetaSchedule, DiffusionConfig, DiffusionModel, Parameterization};
use pp_drc::RuleDeck;
use pp_geometry::{GrayImage, Layout};
use pp_solver::{LegalizeSolver, SolverConfig, SolverSetting};

/// DiffPattern: a diffusion model over topology rasters whose samples
/// are legalized by the nonlinear solver.
///
/// Faithfulness note: the original uses *discrete* (categorical)
/// diffusion over the binary matrix; this port reuses the repository's
/// x0-predicting pixel diffusion at topology resolution with a final
/// threshold, which preserves the pipeline structure (sample topology →
/// solve Δ geometry → check) that the comparison targets. See DESIGN.md.
///
/// # Example
///
/// ```no_run
/// use pp_baselines::DiffPatternBaseline;
/// use pp_pdk::{RuleBasedGenerator, SynthNode};
///
/// let node = SynthNode::default();
/// let training = RuleBasedGenerator::new(node.clone(), 1).generate_batch(100);
/// let mut dp = DiffPatternBaseline::new(node.rules().clone(), 0);
/// dp.train(&training, 300, 8, 2e-3, 0);
/// let outcomes = dp.generate(20, 0);
/// ```
pub struct DiffPatternBaseline {
    model: DiffusionModel,
    deck: RuleDeck,
    clip: u32,
}

impl DiffPatternBaseline {
    /// The clip side length generated layouts target.
    pub fn clip(&self) -> u32 {
        self.clip
    }

    /// Creates an untrained baseline judged by `deck`.
    pub fn new(deck: RuleDeck, seed: u64) -> Self {
        let cfg = DiffusionConfig {
            image: TOPO_SIDE,
            base_ch: 8,
            time_dim: 16,
            t_max: 50,
            schedule: BetaSchedule::Cosine,
            ddim_steps: 10,
            parameterization: Parameterization::X0,
        };
        DiffPatternBaseline {
            model: DiffusionModel::new(cfg, seed),
            deck,
            clip: 32,
        }
    }

    /// Trains the topology diffusion model on DR-clean layouts.
    pub fn train(&mut self, training: &[Layout], steps: usize, batch: usize, lr: f32, seed: u64) {
        let images: Vec<GrayImage> = training.iter().filter_map(layout_to_topo_image).collect();
        assert!(!images.is_empty(), "no usable training topologies");
        let _ = self
            .model
            .train(&images, steps, batch, lr, seed)
            .expect("topology images match the model size by construction");
    }

    /// Samples `n` topologies unconditionally, legalizes each with the
    /// solver (fixed 32×32 clip target) and checks the sign-off deck.
    pub fn generate(&mut self, n: usize, seed: u64) -> Vec<BaselineOutcome> {
        let solver = LegalizeSolver::with_config(
            SolverSetting::ComplexDiscrete,
            SolverConfig {
                size_target_abs: Some((f64::from(self.clip), f64::from(self.clip))),
                ..SolverConfig::default()
            },
        );
        let blank = GrayImage::filled(TOPO_SIDE, TOPO_SIDE, -1.0);
        let full = GrayImage::filled(TOPO_SIDE, TOPO_SIDE, 1.0);
        (0..n)
            .map(|i| {
                let start = std::time::Instant::now();
                let sample = self
                    .model
                    .sample_inpaint(&blank, &full, seed.wrapping_add(i as u64))
                    .expect("topology canvases match the model size by construction");
                let outcome = legalize_and_check(&sample, &solver, &self.deck, seed ^ i as u64);
                BaselineOutcome {
                    seconds: start.elapsed().as_secs_f64(),
                    ..outcome
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_pdk::{RuleBasedGenerator, SynthNode};

    #[test]
    fn pipeline_runs_end_to_end() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 7).generate_batch(16);
        let mut dp = DiffPatternBaseline::new(node.rules().clone(), 2);
        dp.train(&training, 10, 4, 2e-3, 0);
        let out = dp.generate(4, 1);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o.seconds > 0.0));
    }

    #[test]
    fn untrained_model_rarely_legal() {
        // An untrained topology diffusion produces noise; after solver
        // legalization, sign-off legality stays (near) zero — the paper's
        // Table I behaviour for squish-based baselines under an
        // industrial deck.
        let node = SynthNode::default();
        let mut dp = DiffPatternBaseline::new(node.rules().clone(), 3);
        let out = dp.generate(6, 2);
        let legal = out.iter().filter(|o| o.legal).count();
        assert!(legal <= 1, "untrained model produced {legal}/6 legal");
    }
}
