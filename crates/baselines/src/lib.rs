//! Prior-work baselines: CUP and DiffPattern.
//!
//! Both baselines are *squish-based*: they generate only topology
//! matrices and rely on the nonlinear solver (`pp-solver`) to recover
//! legal Δ geometry — the pipeline PatternPaint's pixel-space approach
//! replaces. They are trained on 1 000 DR-clean samples from the
//! rule-based generator (the paper obtained these from a commercial
//! tool), since 20 starters are far too few for either model.
//!
//! * [`CupBaseline`] — CUP (Zhang et al., ICCAD'20): a convolutional
//!   autoencoder over fixed-size topology rasters; new topologies come
//!   from decoding latent perturbations of training samples.
//! * [`DiffPatternBaseline`] — DiffPattern (Wang et al., DAC'23):
//!   diffusion over topology rasters (our port uses the same x0-predicting
//!   denoiser as the main model, trained unconditionally at topology
//!   resolution; the paper's version is categorical — see DESIGN.md).
//!
//! Generated topologies are legalized with the solver under its
//! complex-discrete setting and then judged against the **full**
//! SynthNode sign-off deck. The solver only models a subset of that deck
//! (no width-dependent spacing windows), so most solved patterns still
//! fail sign-off — reproducing the near-zero legality of the paper's
//! Table I baselines.

#![forbid(unsafe_code)]

pub mod cup;
pub mod diffpattern;
pub mod sampler;
pub mod topo;

pub use cup::CupBaseline;
pub use diffpattern::DiffPatternBaseline;
pub use sampler::{CupSampler, DiffPatternSampler};
pub use topo::{layout_to_topo_image, topo_image_to_matrix, TOPO_SIDE};
