//! Fixed-size topology rasters shared by both baselines.
//!
//! Squish-based generators operate on topology matrices of a fixed
//! training size. Layout clips squish to matrices of varying small
//! sizes, so they are padded onto a `TOPO_SIDE`×`TOPO_SIDE` canvas for
//! training and trimmed back after generation.

use pp_geometry::{GrayImage, SquishPattern, TopologyMatrix};

/// The topology raster side used by the baselines (the paper trains CUP
/// and DiffPattern at 128×128; scaled to our 32×32 clips).
pub const TOPO_SIDE: u32 = 16;

/// Squishes a layout and renders its topology matrix as a ±1 image,
/// top-left anchored on the fixed canvas.
///
/// Returns `None` if the topology exceeds the canvas (does not happen
/// for SynthNode clips, whose scan-line counts are bounded well below
/// [`TOPO_SIDE`]).
pub fn layout_to_topo_image(layout: &pp_geometry::Layout) -> Option<GrayImage> {
    let squish = SquishPattern::from_layout(layout);
    let topo = squish.topology();
    if topo.rows() > TOPO_SIDE as usize || topo.cols() > TOPO_SIDE as usize {
        return None;
    }
    let mut img = GrayImage::filled(TOPO_SIDE, TOPO_SIDE, -1.0);
    for r in 0..topo.rows() {
        for c in 0..topo.cols() {
            if topo.get(r, c) {
                img.set(c as u32, r as u32, 1.0);
            }
        }
    }
    Some(img)
}

/// Thresholds a generated topology image and trims empty border rows and
/// columns, returning the topology matrix (or `None` when empty).
pub fn topo_image_to_matrix(img: &GrayImage) -> Option<TopologyMatrix> {
    let side = img.width() as usize;
    let filled = |r: usize, c: usize| img.get(c as u32, r as u32) > 0.0;
    let mut r0 = side;
    let mut r1 = 0usize;
    let mut c0 = side;
    let mut c1 = 0usize;
    for r in 0..side {
        for c in 0..side {
            if filled(r, c) {
                r0 = r0.min(r);
                r1 = r1.max(r + 1);
                c0 = c0.min(c);
                c1 = c1.max(c + 1);
            }
        }
    }
    if r0 >= r1 || c0 >= c1 {
        return None;
    }
    let mut topo = TopologyMatrix::new(r1 - r0, c1 - c0);
    for r in r0..r1 {
        for c in c0..c1 {
            topo.set(r - r0, c - c0, filled(r, c));
        }
    }
    Some(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::{Layout, Rect};

    #[test]
    fn roundtrip_topology_modulo_margins() {
        // Two wires -> squish topology has one filled row with cells at
        // columns 1 and 3; trimming drops the empty margin rows/cols.
        let mut l = Layout::new(32, 32);
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(12, 4, 3, 20));
        let full = SquishPattern::from_layout(&l);
        assert_eq!((full.topology().rows(), full.topology().cols()), (3, 5));
        let img = layout_to_topo_image(&l).unwrap();
        let topo = topo_image_to_matrix(&img).unwrap();
        assert_eq!((topo.rows(), topo.cols()), (1, 3));
        assert!(topo.get(0, 0) && !topo.get(0, 1) && topo.get(0, 2));
    }

    #[test]
    fn empty_image_gives_none() {
        let img = GrayImage::filled(TOPO_SIDE, TOPO_SIDE, -1.0);
        assert!(topo_image_to_matrix(&img).is_none());
    }

    #[test]
    fn trimming_removes_borders() {
        let mut img = GrayImage::filled(TOPO_SIDE, TOPO_SIDE, -1.0);
        img.set(5, 7, 1.0);
        img.set(6, 7, 1.0);
        let topo = topo_image_to_matrix(&img).unwrap();
        assert_eq!((topo.rows(), topo.cols()), (1, 2));
        assert!(topo.get(0, 0) && topo.get(0, 1));
    }
}
