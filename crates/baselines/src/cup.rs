//! The CUP baseline: convolutional autoencoder + solver legalization.

use crate::topo::{layout_to_topo_image, topo_image_to_matrix, TOPO_SIDE};
use pp_drc::{check_layout, RuleDeck};
use pp_geometry::{GrayImage, Layout};
use pp_nn::{
    Adam, AvgPool2, Conv2d, Layer, Linear, Param, Sequential, Silu, Tanh, Tensor, Upsample2,
};
use pp_solver::{LegalizeSolver, SolverConfig, SolverSetting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reshape adapter so `Linear` can sit inside a conv [`Sequential`].
#[derive(Debug, Clone)]
struct Reshape {
    to: [usize; 4],
    from: Option<[usize; 4]>,
}

impl Reshape {
    fn new(to: [usize; 4]) -> Self {
        Reshape { to, from: None }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, x: Tensor) -> Tensor {
        self.from = Some(x.shape());
        let mut to = self.to;
        to[0] = x.n();
        x.reshape(to)
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        grad.reshape(self.from.take().expect("backward without forward"))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

const LATENT: usize = 24;

/// CUP: a topology autoencoder whose latent perturbations generate new
/// topologies, legalized by the nonlinear solver.
///
/// # Example
///
/// ```no_run
/// use pp_baselines::CupBaseline;
/// use pp_pdk::{RuleBasedGenerator, SynthNode};
///
/// let node = SynthNode::default();
/// let training = RuleBasedGenerator::new(node.clone(), 1).generate_batch(100);
/// let mut cup = CupBaseline::new(node.rules().clone(), 0);
/// cup.train(&training, 200, 8, 1e-3, 0);
/// let outcomes = cup.generate(&training, 10, 0);
/// let legal = outcomes.iter().filter(|o| o.legal).count();
/// assert!(legal <= 10);
/// ```
pub struct CupBaseline {
    encoder: Sequential,
    decoder: Sequential,
    deck: RuleDeck,
    clip: u32,
}

/// One generated sample with its legalization outcome.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The legalized layout (present when the solver produced one).
    pub layout: Option<Layout>,
    /// Whether the final layout passed the full sign-off deck.
    pub legal: bool,
    /// Wall-clock seconds spent on this sample (model + solver).
    pub seconds: f64,
}

impl CupBaseline {
    /// The clip side length generated layouts target.
    pub fn clip(&self) -> u32 {
        self.clip
    }

    /// Creates an untrained baseline targeting 32×32 clips judged by
    /// `deck`.
    pub fn new(deck: RuleDeck, seed: u64) -> Self {
        let side = TOPO_SIDE as usize; // 16 -> 8 -> 4 spatially
        let flat = 16 * (side / 4) * (side / 4);
        CupBaseline {
            encoder: Sequential::new(vec![
                Box::new(Conv2d::new(1, 8, 3, seed)),
                Box::new(Silu::new()),
                Box::new(AvgPool2::new()),
                Box::new(Conv2d::new(8, 16, 3, seed ^ 1)),
                Box::new(Silu::new()),
                Box::new(AvgPool2::new()),
                Box::new(Reshape::new([1, flat, 1, 1])),
                Box::new(Linear::new(flat, LATENT, seed ^ 2)),
            ]),
            decoder: Sequential::new(vec![
                Box::new(Linear::new(LATENT, flat, seed ^ 3)),
                Box::new(Silu::new()),
                Box::new(Reshape::new([1, 16, side / 4, side / 4])),
                Box::new(Upsample2::new()),
                Box::new(Conv2d::new(16, 8, 3, seed ^ 4)),
                Box::new(Silu::new()),
                Box::new(Upsample2::new()),
                Box::new(Conv2d::new(8, 4, 3, seed ^ 5)),
                Box::new(Silu::new()),
                Box::new(Conv2d::new(4, 1, 3, seed ^ 6)),
                Box::new(Tanh::new()),
            ]),
            deck,
            clip: 32,
        }
    }

    /// Trains the autoencoder on DR-clean training layouts; returns the
    /// tail reconstruction loss.
    pub fn train(
        &mut self,
        training: &[Layout],
        steps: usize,
        batch: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        let images: Vec<GrayImage> = training.iter().filter_map(layout_to_topo_image).collect();
        assert!(!images.is_empty(), "no usable training topologies");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt_e = Adam::new(lr);
        let mut opt_d = Adam::new(lr);
        let side = TOPO_SIDE as usize;
        let mut tail = 0.0;
        let mut tail_n = 0;
        for step in 0..steps {
            let mut x = Tensor::zeros([batch, 1, side, side]);
            for b in 0..batch {
                let img = &images[rng.gen_range(0..images.len())];
                x.plane_mut(b, 0).copy_from_slice(img.as_pixels());
            }
            self.encoder.zero_grad();
            self.decoder.zero_grad();
            let z = self.encoder.forward(x.clone());
            let y = self.decoder.forward(z);
            let mut grad = Tensor::zeros(y.shape());
            let mut loss = 0.0f32;
            let scale = 2.0 / y.len() as f32;
            for i in 0..y.len() {
                let e = y.data()[i] - x.data()[i];
                loss += e * e / y.len() as f32;
                grad.data_mut()[i] = scale * e;
            }
            let gz = self.decoder.backward(grad);
            let _ = self.encoder.backward(gz);
            opt_d.step(&mut self.decoder);
            opt_e.step(&mut self.encoder);
            if step >= steps - steps / 4 - 1 {
                tail += loss;
                tail_n += 1;
            }
        }
        tail / tail_n.max(1) as f32
    }

    /// Generates `n` candidate patterns by perturbing latents of random
    /// seed layouts, then legalizing with the solver and checking the
    /// sign-off deck.
    pub fn generate(&mut self, seeds: &[Layout], n: usize, seed: u64) -> Vec<BaselineOutcome> {
        let images: Vec<GrayImage> = seeds.iter().filter_map(layout_to_topo_image).collect();
        assert!(!images.is_empty(), "no usable seed topologies");
        let mut rng = StdRng::seed_from_u64(seed);
        let side = TOPO_SIDE as usize;
        let solver = LegalizeSolver::with_config(
            SolverSetting::ComplexDiscrete,
            SolverConfig {
                size_target_abs: Some((f64::from(self.clip), f64::from(self.clip))),
                ..SolverConfig::default()
            },
        );
        (0..n)
            .map(|i| {
                let start = std::time::Instant::now();
                let img = &images[rng.gen_range(0..images.len())];
                let mut x = Tensor::zeros([1, 1, side, side]);
                x.plane_mut(0, 0).copy_from_slice(img.as_pixels());
                let mut z = self.encoder.forward(x);
                for v in z.data_mut() {
                    *v += rng.gen_range(-1.0f32..1.0);
                }
                let y = self.decoder.forward(z);
                let gen = GrayImage::from_pixels(TOPO_SIDE, TOPO_SIDE, y.into_vec());
                let outcome = legalize_and_check(&gen, &solver, &self.deck, seed ^ i as u64);
                BaselineOutcome {
                    seconds: start.elapsed().as_secs_f64(),
                    ..outcome
                }
            })
            .collect()
    }
}

/// Shared tail: topology image → solver → sign-off check.
pub(crate) fn legalize_and_check(
    gen: &GrayImage,
    solver: &LegalizeSolver,
    deck: &RuleDeck,
    seed: u64,
) -> BaselineOutcome {
    let Some(topo) = topo_image_to_matrix(gen) else {
        return BaselineOutcome {
            layout: None,
            legal: false,
            seconds: 0.0,
        };
    };
    let solved = solver.solve(&topo, seed);
    match solved.pattern {
        Some(pattern) => {
            let layout = pattern.to_layout();
            let legal = check_layout(&layout, deck).is_clean() && layout.metal_area() > 0;
            BaselineOutcome {
                layout: Some(layout),
                legal,
                seconds: 0.0,
            }
        }
        None => BaselineOutcome {
            layout: None,
            legal: false,
            seconds: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_pdk::{RuleBasedGenerator, SynthNode};

    #[test]
    fn training_reduces_reconstruction_loss() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 5).generate_batch(30);
        let mut cup = CupBaseline::new(node.rules().clone(), 0);
        let early = cup.train(&training, 5, 4, 2e-3, 0);
        let late = cup.train(&training, 60, 4, 2e-3, 1);
        assert!(late < early, "loss should drop: {early} -> {late}");
    }

    #[test]
    fn generate_reports_outcomes() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 6).generate_batch(20);
        let mut cup = CupBaseline::new(node.rules().clone(), 1);
        let _ = cup.train(&training, 20, 4, 2e-3, 2);
        let out = cup.generate(&training, 5, 3);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|o| o.seconds >= 0.0));
        // Legal implies a layout exists.
        for o in &out {
            if o.legal {
                assert!(o.layout.is_some());
            }
        }
    }
}
