//! Baseline generators behind the pipeline's [`Sampler`] trait.
//!
//! CUP and DiffPattern generate whole patterns (topology → solver →
//! layout) rather than inpainting a `(template, mask)` job, so their
//! adapters ignore the job's mask and answer job `i` with the
//! baseline's `i`-th generated sample: the legalized layout rendered as
//! a ±1 raster when the solver succeeded, a blank raster (which fails
//! validation downstream) when it did not. Driving them through
//! `patternpaint_core::run_round` with a threshold denoiser puts every method of
//! Table I/II through one harness.

use crate::cup::{BaselineOutcome, CupBaseline};
use crate::diffpattern::DiffPatternBaseline;
use patternpaint_core::{JobSet, PpError, RawSample, Sampler};
use pp_geometry::{GrayImage, Layout};
use std::sync::{Arc, Mutex, PoisonError};

fn outcome_image(outcome: &BaselineOutcome, clip: u32) -> GrayImage {
    match &outcome.layout {
        Some(layout) => GrayImage::from_layout(layout),
        // No solver solution: an empty raster, rejected by validation.
        None => GrayImage::filled(clip, clip, -1.0),
    }
}

fn outcomes_to_samples(jobs: &JobSet, outcomes: &[BaselineOutcome], clip: u32) -> Vec<RawSample> {
    jobs.iter()
        .zip(outcomes)
        .map(|((template, _mask), outcome)| RawSample {
            template: Arc::clone(template),
            raw: outcome_image(outcome, clip),
        })
        .collect()
}

/// [`CupBaseline`] as a [`Sampler`]: latent-perturbation generation
/// over a fixed pool of seed layouts.
///
/// The baseline needs `&mut self` to run its autoencoder, so the
/// adapter serialises calls behind a mutex; results stay deterministic
/// in the request seed because the baseline reseeds its RNG per call.
pub struct CupSampler {
    inner: Mutex<CupBaseline>,
    seeds: Vec<Layout>,
    clip: u32,
}

impl CupSampler {
    /// Wraps a trained baseline with the seed layouts its latents are
    /// perturbed from.
    pub fn new(baseline: CupBaseline, seeds: Vec<Layout>) -> Self {
        let clip = baseline.clip();
        CupSampler {
            inner: Mutex::new(baseline),
            seeds,
            clip,
        }
    }
}

impl Sampler for CupSampler {
    fn name(&self) -> &str {
        "CUP"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        // Poison recovery: the baseline reseeds per call, so a panic in
        // an earlier call leaves no state worth protecting.
        let outcomes = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .generate(&self.seeds, jobs.len(), seed);
        Ok(outcomes_to_samples(jobs, &outcomes, self.clip))
    }
}

/// [`DiffPatternBaseline`] as a [`Sampler`]: unconditional topology
/// diffusion plus solver legalization.
pub struct DiffPatternSampler {
    inner: Mutex<DiffPatternBaseline>,
    clip: u32,
}

impl DiffPatternSampler {
    /// Wraps a trained baseline.
    pub fn new(baseline: DiffPatternBaseline) -> Self {
        let clip = baseline.clip();
        DiffPatternSampler {
            inner: Mutex::new(baseline),
            clip,
        }
    }
}

impl Sampler for DiffPatternSampler {
    fn name(&self) -> &str {
        "DiffPattern"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        // Poison recovery: generation reseeds per call (see CupSampler).
        let outcomes = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .generate(jobs.len(), seed);
        Ok(outcomes_to_samples(jobs, &outcomes, self.clip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternpaint_core::{
        run_round, DrcValidator, Engine, GenerationRequest, PipelineConfig, StreamOptions,
    };
    use pp_inpaint::{Mask, ThresholdDenoiser};
    use pp_pdk::{RuleBasedGenerator, SynthNode};

    fn baseline_request(node: &SynthNode, templates: &[Layout], n: usize) -> GenerationRequest {
        GenerationRequest::new(JobSet::cycle(templates, &[Mask::full(node.clip())], n), 3)
    }

    #[test]
    fn cup_runs_through_the_harness() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 6).generate_batch(20);
        let mut cup = CupBaseline::new(node.rules().clone(), 1);
        let _ = cup.train(&training, 20, 4, 2e-3, 2);
        let sampler = CupSampler::new(cup, training.clone());
        let request = baseline_request(&node, &training, 5);
        let round = run_round(
            &sampler,
            &ThresholdDenoiser::new(),
            &DrcValidator::new(node.rules().clone()),
            &request,
            &StreamOptions::default(),
        )
        .expect("harness runs");
        assert_eq!(round.generated, 5);
        assert!(round.legal <= round.generated);
        assert!(round.library.len() <= round.legal);
    }

    /// The baseline adapters ride the engine/session surface like any
    /// other sampler override: a session driving CUP produces exactly
    /// what the bare `run_round` harness produces for the same request.
    #[test]
    fn cup_runs_as_an_engine_session() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 6).generate_batch(12);
        let train_baseline = || {
            let mut cup = CupBaseline::new(node.rules().clone(), 1);
            let _ = cup.train(&training, 10, 4, 2e-3, 2);
            CupSampler::new(cup, training.clone())
        };
        let request = baseline_request(&node, &training, 5);

        let reference = run_round(
            &train_baseline(),
            &ThresholdDenoiser::new(),
            &DrcValidator::new(node.rules().clone()),
            &request,
            &StreamOptions::default(),
        )
        .expect("harness runs");

        let engine = Engine::builder(node.clone(), PipelineConfig::standard())
            .sampler(train_baseline())
            .denoiser(ThresholdDenoiser::new())
            .untrained_engine()
            .expect("standard config is valid");
        let mut session = engine.session();
        let (generated, legal) = session.run_request(&request).expect("session runs");
        assert_eq!(generated, reference.generated);
        assert_eq!(legal, reference.legal);
        assert_eq!(session.library().patterns(), reference.library.patterns());
    }

    #[test]
    fn diffpattern_harness_matches_direct_generate() {
        let node = SynthNode::default();
        let training = RuleBasedGenerator::new(node.clone(), 7).generate_batch(16);
        let mut dp = DiffPatternBaseline::new(node.rules().clone(), 2);
        dp.train(&training, 10, 4, 2e-3, 0);

        // Direct path first (the sampler serialises access afterwards).
        let direct = {
            let mut dp2 = DiffPatternBaseline::new(node.rules().clone(), 2);
            dp2.train(&training, 10, 4, 2e-3, 0);
            dp2.generate(4, 9)
        };
        let validator = DrcValidator::new(node.rules().clone());
        let direct_legal = direct.iter().filter(|o| o.legal).count();

        let sampler = DiffPatternSampler::new(dp);
        let request = baseline_request(&node, &training, 4);
        let round = run_round(
            &sampler,
            &ThresholdDenoiser::new(),
            &validator,
            &GenerationRequest::new(request.jobs().clone(), 9),
            &StreamOptions::default(),
        )
        .expect("harness runs");
        assert_eq!(round.generated, 4);
        assert_eq!(
            round.legal, direct_legal,
            "harness legality must match the direct baseline path"
        );
    }
}
