//! Violation reports produced by the checker.

use pp_geometry::Rect;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies which design rule a violation breaks.
///
/// The variants mirror the rule names of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleId {
    /// R3-W: feature narrower than the minimum width.
    MinWidth,
    /// Complex setting: wire body wider than the maximum width.
    MaxWidth,
    /// R3.1-W: wire-body width outside the discrete allowed set.
    DiscreteWidth,
    /// R1-S: side-to-side spacing below the minimum.
    MinSpacing,
    /// Complex setting: side-to-side spacing above the maximum.
    MaxSpacing,
    /// R1.1–R1.4: spacing outside the width-dependent window.
    SpacingWindow,
    /// R2-E: end-to-end spacing below the minimum.
    MinEndToEnd,
    /// R4-A: shape area below the minimum.
    MinArea,
    /// R4-A: shape area above the maximum.
    MaxArea,
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RuleId::MinWidth => "R3-W.min",
            RuleId::MaxWidth => "R3-W.max",
            RuleId::DiscreteWidth => "R3.1-W",
            RuleId::MinSpacing => "R1-S",
            RuleId::MaxSpacing => "R1-S.max",
            RuleId::SpacingWindow => "R1.x-S",
            RuleId::MinEndToEnd => "R2-E",
            RuleId::MinArea => "R4-A.min",
            RuleId::MaxArea => "R4-A.max",
        };
        f.write_str(s)
    }
}

/// One design-rule violation with its location and measured value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Physical location of the offending measurement (pixel coordinates).
    pub location: Rect,
    /// The measured value (width, spacing or area, per rule).
    pub measured: u64,
    /// A short human-readable description of the expectation.
    pub expected: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {}: measured {}, expected {}",
            self.rule, self.location, self.measured, self.expected
        )
    }
}

/// The result of checking one layout clip.
///
/// # Example
///
/// ```
/// use pp_drc::{DrcReport, RuleId};
///
/// let report = DrcReport::default();
/// assert!(report.is_clean());
/// assert_eq!(report.count(RuleId::MinWidth), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrcReport {
    violations: Vec<Violation>,
}

impl DrcReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation.
    pub fn push(&mut self, violation: Violation) {
        self.violations.push(violation);
    }

    /// Whether the clip is DR-clean (the paper's legality criterion).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Whether there are no violations (alias of [`DrcReport::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Violation counts grouped by rule, sorted by rule id.
    pub fn histogram(&self) -> BTreeMap<RuleId, usize> {
        let mut h = BTreeMap::new();
        for v in &self.violations {
            *h.entry(v.rule).or_insert(0) += 1;
        }
        h
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: DrcReport) {
        self.violations.extend(other.violations);
    }
}

impl std::fmt::Display for DrcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return writeln!(f, "CLEAN");
        }
        writeln!(f, "{} violation(s):", self.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<Violation> for DrcReport {
    fn from_iter<I: IntoIterator<Item = Violation>>(iter: I) -> Self {
        DrcReport {
            violations: iter.into_iter().collect(),
        }
    }
}

impl Extend<Violation> for DrcReport {
    fn extend<I: IntoIterator<Item = Violation>>(&mut self, iter: I) {
        self.violations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId, measured: u64) -> Violation {
        Violation {
            rule,
            location: Rect::new(0, 0, 1, 1),
            measured,
            expected: ">= 3".into(),
        }
    }

    #[test]
    fn clean_report() {
        let r = DrcReport::new();
        assert!(r.is_clean());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_string(), "CLEAN\n");
    }

    #[test]
    fn push_and_count() {
        let mut r = DrcReport::new();
        r.push(v(RuleId::MinWidth, 2));
        r.push(v(RuleId::MinWidth, 1));
        r.push(v(RuleId::MinSpacing, 2));
        assert!(!r.is_clean());
        assert_eq!(r.count(RuleId::MinWidth), 2);
        assert_eq!(r.count(RuleId::MinSpacing), 1);
        assert_eq!(r.count(RuleId::MinArea), 0);
    }

    #[test]
    fn histogram_groups() {
        let r: DrcReport = vec![
            v(RuleId::MinArea, 4),
            v(RuleId::MinArea, 5),
            v(RuleId::MinEndToEnd, 2),
        ]
        .into_iter()
        .collect();
        let h = r.histogram();
        assert_eq!(h[&RuleId::MinArea], 2);
        assert_eq!(h[&RuleId::MinEndToEnd], 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a: DrcReport = vec![v(RuleId::MinWidth, 1)].into_iter().collect();
        let b: DrcReport = vec![v(RuleId::MaxArea, 900)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_mentions_rule_names() {
        let r: DrcReport = vec![v(RuleId::DiscreteWidth, 4)].into_iter().collect();
        let s = r.to_string();
        assert!(s.contains("R3.1-W"));
        assert!(s.contains("measured 4"));
    }
}
