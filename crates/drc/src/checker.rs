//! The design-rule checker proper.
//!
//! All checks run on the squish grid. Physical distances are recovered from
//! the Δ vectors, so the checks are exact for Manhattan geometry.
//!
//! ## Measurement semantics
//!
//! * **Widths** are measured on *bars* — maximal runs of filled cells in a
//!   topology row (x width) or column (y width). A bar is a *wire body*
//!   when the identical run persists over a physical length of at least
//!   [`RuleDeck::wire_min_len`] in the perpendicular direction; only wire
//!   bodies are subject to the discrete-width and max-width rules (corner,
//!   junction and strap rows are exempt, as in production decks).
//! * **Side-to-side spacing** is the physical gap between consecutive bars
//!   in a row; **end-to-end spacing** is the gap between consecutive runs
//!   in a column.
//! * **Area** is per 4-connected component of the grid.
//!
//! ## Border waivers
//!
//! Shapes may continue outside the clip, so: bars touching the clip border
//! in the measured direction are exempt from discrete/max width, and
//! components touching any border are exempt from the minimum-area rule.
//! Minimum width and spacing are enforced everywhere.

use crate::report::{DrcReport, RuleId, Violation};
use crate::rules::RuleDeck;
use pp_geometry::{Layout, Rect, SquishPattern, TopologyMatrix};

/// Checks a raster layout against a rule deck.
///
/// Convenience wrapper that squishes the layout first; see [`check_squish`].
pub fn check_layout(layout: &Layout, rules: &RuleDeck) -> DrcReport {
    check_squish(&SquishPattern::from_layout(layout), rules)
}

/// Checks a squish pattern against a rule deck.
///
/// Returns every violation found; an empty report means the pattern is
/// DR-clean ("legal" in the paper's terminology).
pub fn check_squish(pattern: &SquishPattern, rules: &RuleDeck) -> DrcReport {
    let mut report = DrcReport::new();
    let ctx = Ctx::new(pattern);
    check_row_widths(&ctx, rules, &mut report);
    check_col_widths(&ctx, rules, &mut report);
    check_row_spacing(&ctx, rules, &mut report);
    check_col_end_to_end(&ctx, rules, &mut report);
    check_areas(&ctx, rules, &mut report);
    report
}

/// Pre-computed geometry shared by the individual checks.
struct Ctx<'a> {
    topo: &'a TopologyMatrix,
    /// Cumulative x scan-line coordinates (len = cols + 1).
    xs: Vec<u32>,
    /// Cumulative y scan-line coordinates (len = rows + 1).
    ys: Vec<u32>,
}

impl<'a> Ctx<'a> {
    fn new(pattern: &'a SquishPattern) -> Self {
        Ctx {
            topo: pattern.topology(),
            xs: pattern.x_lines(),
            ys: pattern.y_lines(),
        }
    }

    fn cols(&self) -> usize {
        self.topo.cols()
    }

    fn rows(&self) -> usize {
        self.topo.rows()
    }

    /// Physical width of the column range `[c0, c1)`.
    fn width_of(&self, c0: usize, c1: usize) -> u32 {
        self.xs[c1] - self.xs[c0]
    }

    /// Physical height of the row range `[r0, r1)`.
    fn height_of(&self, r0: usize, r1: usize) -> u32 {
        self.ys[r1] - self.ys[r0]
    }

    /// Physical rectangle of the cell block rows `[r0, r1)` × cols `[c0, c1)`.
    fn rect_of(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Rect {
        Rect::from_bounds(self.xs[c0], self.ys[r0], self.xs[c1], self.ys[r1])
    }

    /// Whether `[c0, c1)` is a *maximal* filled run in `row`.
    fn is_maximal_row_run(&self, row: usize, c0: usize, c1: usize) -> bool {
        (c0..c1).all(|c| self.topo.get(row, c))
            && (c0 == 0 || !self.topo.get(row, c0 - 1))
            && (c1 == self.cols() || !self.topo.get(row, c1))
    }

    /// Whether `[r0, r1)` is a maximal filled run in `col`.
    fn is_maximal_col_run(&self, col: usize, r0: usize, r1: usize) -> bool {
        (r0..r1).all(|r| self.topo.get(r, col))
            && (r0 == 0 || !self.topo.get(r0 - 1, col))
            && (r1 == self.rows() || !self.topo.get(r1, col))
    }

    /// The maximal row range `[r0, r1)` over which the identical maximal
    /// run `[c0, c1)` persists, containing `row`.
    fn row_bar_persistence(&self, row: usize, c0: usize, c1: usize) -> (usize, usize) {
        let mut r0 = row;
        while r0 > 0 && self.is_maximal_row_run(r0 - 1, c0, c1) {
            r0 -= 1;
        }
        let mut r1 = row + 1;
        while r1 < self.rows() && self.is_maximal_row_run(r1, c0, c1) {
            r1 += 1;
        }
        (r0, r1)
    }

    /// The maximal column range over which the identical maximal run
    /// `[r0, r1)` persists, containing `col`.
    fn col_bar_persistence(&self, col: usize, r0: usize, r1: usize) -> (usize, usize) {
        let mut c0 = col;
        while c0 > 0 && self.is_maximal_col_run(c0 - 1, r0, r1) {
            c0 -= 1;
        }
        let mut c1 = col + 1;
        while c1 < self.cols() && self.is_maximal_col_run(c1, r0, r1) {
            c1 += 1;
        }
        (c0, c1)
    }
}

/// Horizontal (x-direction) width checks on row bars.
fn check_row_widths(ctx: &Ctx, rules: &RuleDeck, report: &mut DrcReport) {
    for bar in ctx.topo.horizontal_bars() {
        let w = ctx.width_of(bar.c0, bar.c1);
        let (p0, p1) = ctx.row_bar_persistence(bar.row, bar.c0, bar.c1);
        // Report each persistent bar once, at its first row.
        if bar.row != p0 {
            continue;
        }
        let location = ctx.rect_of(p0, p1, bar.c0, bar.c1);
        if w < rules.min_width {
            report.push(Violation {
                rule: RuleId::MinWidth,
                location,
                measured: u64::from(w),
                expected: format!(">= {}", rules.min_width),
            });
            continue;
        }
        let touches_border = ctx.xs[bar.c0] == 0 || ctx.xs[bar.c1] == *ctx.xs.last().unwrap();
        // A wire body must persist for at least `wire_min_len` and be
        // longer than it is wide (otherwise the run is a cross-section of
        // a shape oriented the other way, whose width the column pass
        // measures).
        let persist = ctx.height_of(p0, p1);
        let is_wire_body = persist >= rules.wire_min_len && persist >= w;
        if is_wire_body && !touches_border {
            wire_body_width_checks(w, location, rules, report);
        }
    }
}

/// Vertical (y-direction) width checks on column bars.
fn check_col_widths(ctx: &Ctx, rules: &RuleDeck, report: &mut DrcReport) {
    for (col, r0, r1) in ctx.topo.vertical_bars() {
        let h = ctx.height_of(r0, r1);
        let (p0, p1) = ctx.col_bar_persistence(col, r0, r1);
        if col != p0 {
            continue;
        }
        let location = ctx.rect_of(r0, r1, p0, p1);
        if h < rules.min_width {
            report.push(Violation {
                rule: RuleId::MinWidth,
                location,
                measured: u64::from(h),
                expected: format!(">= {}", rules.min_width),
            });
            continue;
        }
        let touches_border = ctx.ys[r0] == 0 || ctx.ys[r1] == *ctx.ys.last().unwrap();
        let persist = ctx.width_of(p0, p1);
        let is_wire_body = persist >= rules.wire_min_len && persist >= h;
        if is_wire_body && !touches_border {
            wire_body_width_checks(h, location, rules, report);
        }
    }
}

fn wire_body_width_checks(w: u32, location: Rect, rules: &RuleDeck, report: &mut DrcReport) {
    if let Some(max_w) = rules.max_width {
        if w > max_w {
            report.push(Violation {
                rule: RuleId::MaxWidth,
                location,
                measured: u64::from(w),
                expected: format!("<= {max_w}"),
            });
            return;
        }
    }
    if let Some(set) = &rules.discrete_widths {
        if !set.contains(&w) {
            report.push(Violation {
                rule: RuleId::DiscreteWidth,
                location,
                measured: u64::from(w),
                expected: format!("in {set:?}"),
            });
        }
    }
}

/// Side-to-side spacing (R1-S) and width-dependent windows (R1.1–R1.4).
fn check_row_spacing(ctx: &Ctx, rules: &RuleDeck, report: &mut DrcReport) {
    for row in 0..ctx.rows() {
        let bars: Vec<(usize, usize)> = row_runs(ctx.topo, row);
        for pair in bars.windows(2) {
            let (a0, a1) = pair[0];
            let (b0, b1) = pair[1];
            // Deduplicate: skip when the previous row shows the identical
            // left/right bar pair (the gap is the same physical gap).
            if row > 0
                && ctx.is_maximal_row_run(row - 1, a0, a1)
                && ctx.is_maximal_row_run(row - 1, b0, b1)
            {
                continue;
            }
            let gap = ctx.width_of(a1, b0);
            let location = ctx.rect_of(row, row + 1, a1, b0);
            if gap < rules.min_spacing {
                report.push(Violation {
                    rule: RuleId::MinSpacing,
                    location,
                    measured: u64::from(gap),
                    expected: format!(">= {}", rules.min_spacing),
                });
                continue;
            }
            if let Some(max_spacing) = rules.max_spacing {
                if gap > max_spacing {
                    report.push(Violation {
                        rule: RuleId::MaxSpacing,
                        location,
                        measured: u64::from(gap),
                        expected: format!("<= {max_spacing}"),
                    });
                    continue;
                }
            }
            if let Some(table) = &rules.spacing_table {
                let wl = ctx.width_of(a0, a1);
                let wr = ctx.width_of(b0, b1);
                if let (Some(cl), Some(cr)) = (table.classify(wl), table.classify(wr)) {
                    let window = table.window(cl, cr);
                    if !window.contains(gap) {
                        report.push(Violation {
                            rule: RuleId::SpacingWindow,
                            location,
                            measured: u64::from(gap),
                            expected: format!(
                                "in {}..={} for ({cl:?},{cr:?})",
                                window.min, window.max
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// End-to-end spacing (R2-E): vertical gaps within each column.
fn check_col_end_to_end(ctx: &Ctx, rules: &RuleDeck, report: &mut DrcReport) {
    for col in 0..ctx.cols() {
        let runs: Vec<(usize, usize)> = col_runs(ctx.topo, col);
        for pair in runs.windows(2) {
            let (_, a1) = pair[0];
            let (b0, _) = pair[1];
            if col > 0
                && ctx.is_maximal_col_run(col - 1, pair[0].0, pair[0].1)
                && ctx.is_maximal_col_run(col - 1, pair[1].0, pair[1].1)
            {
                continue;
            }
            let gap = ctx.height_of(a1, b0);
            if gap < rules.min_end_to_end {
                report.push(Violation {
                    rule: RuleId::MinEndToEnd,
                    location: ctx.rect_of(a1, b0, col, col + 1),
                    measured: u64::from(gap),
                    expected: format!(">= {}", rules.min_end_to_end),
                });
            }
        }
    }
}

/// Area checks (R4-A) on 4-connected components of the squish grid.
fn check_areas(ctx: &Ctx, rules: &RuleDeck, report: &mut DrcReport) {
    let rows = ctx.rows();
    let cols = ctx.cols();
    let mut visited = vec![false; rows * cols];
    for start_r in 0..rows {
        for start_c in 0..cols {
            if visited[start_r * cols + start_c] || !ctx.topo.get(start_r, start_c) {
                continue;
            }
            let mut stack = vec![(start_r, start_c)];
            visited[start_r * cols + start_c] = true;
            let mut area = 0u64;
            let (mut r0, mut r1, mut c0, mut c1) = (start_r, start_r + 1, start_c, start_c + 1);
            while let Some((r, c)) = stack.pop() {
                area += u64::from(ctx.width_of(c, c + 1)) * u64::from(ctx.height_of(r, r + 1));
                r0 = r0.min(r);
                r1 = r1.max(r + 1);
                c0 = c0.min(c);
                c1 = c1.max(c + 1);
                let mut try_push = |nr: usize, nc: usize, stack: &mut Vec<(usize, usize)>| {
                    if !visited[nr * cols + nc] && ctx.topo.get(nr, nc) {
                        visited[nr * cols + nc] = true;
                        stack.push((nr, nc));
                    }
                };
                if r > 0 {
                    try_push(r - 1, c, &mut stack);
                }
                if r + 1 < rows {
                    try_push(r + 1, c, &mut stack);
                }
                if c > 0 {
                    try_push(r, c - 1, &mut stack);
                }
                if c + 1 < cols {
                    try_push(r, c + 1, &mut stack);
                }
            }
            let location = ctx.rect_of(r0, r1, c0, c1);
            let touches_border = location.x == 0
                || location.y == 0
                || location.right() == *ctx.xs.last().unwrap()
                || location.bottom() == *ctx.ys.last().unwrap();
            if area < rules.min_area && !touches_border {
                report.push(Violation {
                    rule: RuleId::MinArea,
                    location,
                    measured: area,
                    expected: format!(">= {}", rules.min_area),
                });
            }
            if let Some(max_area) = rules.max_area {
                if area > max_area {
                    report.push(Violation {
                        rule: RuleId::MaxArea,
                        location,
                        measured: area,
                        expected: format!("<= {max_area}"),
                    });
                }
            }
        }
    }
}

/// Maximal filled runs `[c0, c1)` in one topology row.
fn row_runs(topo: &TopologyMatrix, row: usize) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut c = 0;
    while c < topo.cols() {
        if topo.get(row, c) {
            let c0 = c;
            while c < topo.cols() && topo.get(row, c) {
                c += 1;
            }
            runs.push((c0, c));
        } else {
            c += 1;
        }
    }
    runs
}

/// Maximal filled runs `[r0, r1)` in one topology column.
fn col_runs(topo: &TopologyMatrix, col: usize) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut r = 0;
    while r < topo.rows() {
        if topo.get(r, col) {
            let r0 = r;
            while r < topo.rows() && topo.get(r, col) {
                r += 1;
            }
            runs.push((r0, r));
        } else {
            r += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{SpacingTable, SpacingWindow};
    use pp_geometry::{Layout, Rect};
    use proptest::prelude::*;

    fn basic() -> RuleDeck {
        RuleDeck::basic("basic-test", 3, 3, 4, 12)
    }

    fn advanced() -> RuleDeck {
        let mut d = RuleDeck::basic("advanced-test", 3, 3, 4, 12);
        d.discrete_widths = Some(vec![3, 5]);
        d.wire_min_len = 8;
        d.max_area = Some(400);
        d.spacing_table = Some(SpacingTable {
            width_a: 3,
            width_b: 5,
            windows: [
                [SpacingWindow::new(3, 24), SpacingWindow::new(4, 24)],
                [SpacingWindow::new(4, 24), SpacingWindow::new(5, 24)],
            ],
        });
        d
    }

    fn clip() -> Layout {
        Layout::new(32, 32)
    }

    #[test]
    fn empty_clip_is_clean() {
        assert!(check_layout(&clip(), &basic()).is_clean());
        assert!(check_layout(&clip(), &advanced()).is_clean());
    }

    #[test]
    fn legal_wire_is_clean() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 3, 20));
        assert!(check_layout(&l, &advanced()).is_clean());
    }

    #[test]
    fn narrow_wire_flags_min_width_once() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 2, 20));
        let r = check_layout(&l, &basic());
        assert_eq!(r.count(RuleId::MinWidth), 1);
    }

    #[test]
    fn thin_horizontal_sliver_flags_min_width() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 20, 2));
        let r = check_layout(&l, &basic());
        assert!(r.count(RuleId::MinWidth) >= 1);
    }

    #[test]
    fn close_wires_flag_min_spacing() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(9, 4, 3, 20)); // gap of 2 < 3
        let r = check_layout(&l, &basic());
        assert_eq!(r.count(RuleId::MinSpacing), 1);
    }

    #[test]
    fn stacked_wires_flag_end_to_end() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 3, 10));
        l.fill_rect(Rect::new(4, 16, 3, 10)); // vertical gap 2 < 4
        let r = check_layout(&l, &basic());
        assert_eq!(r.count(RuleId::MinEndToEnd), 1);
    }

    #[test]
    fn small_dot_flags_min_area() {
        let mut l = clip();
        l.fill_rect(Rect::new(10, 10, 3, 3)); // area 9 < 12
        let r = check_layout(&l, &basic());
        assert_eq!(r.count(RuleId::MinArea), 1);
    }

    #[test]
    fn border_shape_waives_min_area() {
        let mut l = clip();
        l.fill_rect(Rect::new(0, 0, 3, 3));
        let r = check_layout(&l, &basic());
        assert_eq!(r.count(RuleId::MinArea), 0);
    }

    #[test]
    fn huge_shape_flags_max_area() {
        let mut l = clip();
        l.fill_rect(Rect::new(3, 3, 26, 26));
        let r = check_layout(&l, &advanced());
        assert_eq!(r.count(RuleId::MaxArea), 1);
    }

    #[test]
    fn width_4_wire_flags_discrete_only_in_advanced() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 4, 20)); // width 4 not in {3,5}
        assert!(check_layout(&l, &basic()).is_clean());
        let r = check_layout(&l, &advanced());
        assert_eq!(r.count(RuleId::DiscreteWidth), 1);
    }

    #[test]
    fn short_stub_exempt_from_discrete_width() {
        let mut l = clip();
        // Legal wire with a short width-4 side stub (persistence < 8).
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(7, 10, 4, 4));
        let r = check_layout(&l, &advanced());
        assert_eq!(r.count(RuleId::DiscreteWidth), 0);
    }

    #[test]
    fn spacing_window_violated_for_ab_pair() {
        let mut l = clip();
        // Width-3 (class A) next to width-5 (class B) at gap 3: window for
        // (A,B) requires >= 4.
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(10, 4, 5, 20));
        let r = check_layout(&l, &advanced());
        assert_eq!(r.count(RuleId::SpacingWindow), 1);
        assert_eq!(r.count(RuleId::MinSpacing), 0);
    }

    #[test]
    fn spacing_window_satisfied_at_gap_4() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(11, 4, 5, 20));
        assert!(check_layout(&l, &advanced()).is_clean());
    }

    #[test]
    fn max_width_flags_wide_wire() {
        let mut d = basic();
        d.max_width = Some(6);
        d.wire_min_len = 8;
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 8, 20));
        let r = check_layout(&l, &d);
        assert_eq!(r.count(RuleId::MaxWidth), 1);
    }

    #[test]
    fn border_touching_wire_waives_discrete() {
        let mut l = clip();
        l.fill_rect(Rect::new(0, 4, 4, 24)); // width 4 but touches x=0
        let r = check_layout(&l, &advanced());
        assert_eq!(r.count(RuleId::DiscreteWidth), 0);
    }

    #[test]
    fn l_shape_is_clean_under_basic() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 3, 20));
        l.fill_rect(Rect::new(4, 21, 16, 3));
        assert!(check_layout(&l, &basic()).is_clean());
    }

    #[test]
    fn violation_location_is_physical() {
        let mut l = clip();
        l.fill_rect(Rect::new(4, 4, 2, 20));
        let r = check_layout(&l, &basic());
        let v = &r.violations()[0];
        assert_eq!(v.location, Rect::new(4, 4, 2, 20));
    }

    proptest! {
        /// The checker is deterministic.
        #[test]
        fn prop_deterministic(rects in proptest::collection::vec(
            (0u32..28, 0u32..28, 1u32..8, 1u32..8), 0..6)) {
            let mut l = clip();
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let a = check_layout(&l, &advanced());
            let b = check_layout(&l, &advanced());
            prop_assert_eq!(a, b);
        }

        /// Advanced violations are a superset of basic ones on the shared
        /// rules (advanced adds rules, never relaxes them).
        #[test]
        fn prop_advanced_at_least_as_strict(rects in proptest::collection::vec(
            (0u32..28, 0u32..28, 2u32..8, 2u32..8), 0..5)) {
            let mut l = clip();
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let basic_report = check_layout(&l, &basic());
            let adv_report = check_layout(&l, &advanced());
            prop_assert!(adv_report.len() >= basic_report.len());
        }

        /// A single sufficiently large rect away from borders is clean
        /// under the basic deck when its dimensions obey min width/area.
        #[test]
        fn prop_fat_rect_clean(x in 3u32..12, y in 3u32..12, w in 3u32..8, h in 4u32..8) {
            prop_assume!(u64::from(w) * u64::from(h) >= 12);
            let mut l = clip();
            l.fill_rect(Rect::new(x, y, w, h));
            prop_assert!(check_layout(&l, &basic()).is_clean());
        }
    }
}
