//! Exact Manhattan design-rule checking over squish grids.
//!
//! This crate plays the role of the industry-standard sign-off DRC tool in
//! the PatternPaint paper: every generated pattern is validated here, and
//! "legality" throughout the reproduction means a clean [`DrcReport`].
//!
//! The checker implements the two rule families of the paper's Figure 3:
//!
//! * **Basic rule set** — minimum width (R3-W), side-to-side spacing
//!   (R1-S), end-to-end spacing (R2-E) and area bounds (R4-A);
//! * **Advanced rule set** — a discrete set of allowed wire widths
//!   (R3.1-W) and width-dependent spacing *windows* `C1 < S_ab < C2`
//!   (R1.1–R1.4), the constraints that make nonlinear-solver legalization
//!   intractable.
//!
//! All measurements are performed on the squish grid (scan-line intervals),
//! which is exact for Manhattan geometry and fast: a clip is first squished
//! ([`pp_geometry::SquishPattern`]), then bars, gaps and components are
//! measured in topology space with physical sizes recovered from Δx/Δy.
//!
//! # Example
//!
//! ```
//! use pp_geometry::{Layout, Rect};
//! use pp_drc::{check_layout, RuleDeck};
//!
//! let rules = RuleDeck::basic("demo", 3, 3, 4, 12);
//! let mut l = Layout::new(32, 32);
//! l.fill_rect(Rect::new(4, 4, 3, 20));  // legal wire
//! assert!(check_layout(&l, &rules).is_clean());
//!
//! l.fill_rect(Rect::new(9, 4, 2, 20));  // too narrow AND too close
//! let report = check_layout(&l, &rules);
//! assert!(!report.is_clean());
//! ```

#![forbid(unsafe_code)]

pub mod checker;
pub mod report;
pub mod rules;

pub use checker::{check_layout, check_squish};
pub use report::{DrcReport, RuleId, Violation};
pub use rules::{RuleDeck, SpacingTable, SpacingWindow, WidthClass};
