//! Design-rule decks: parameter sets the checker enforces.

use serde::{Deserialize, Serialize};

/// Width classification for the width-dependent spacing table.
///
/// The advanced rule set of the paper allows only two wire widths `Wa` and
/// `Wb`; spacing windows depend on the classes of the two facing wires.
/// Wires of any other width (e.g. wide straps exempt from the discrete
/// rule) fall outside the table and only the global minimum applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidthClass {
    /// Narrow wire class (width == `Wa`).
    A,
    /// Wide wire class (width == `Wb`).
    B,
}

/// An allowed spacing interval `min ..= max` (inclusive), in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpacingWindow {
    /// Smallest legal spacing.
    pub min: u32,
    /// Largest legal spacing.
    pub max: u32,
}

impl SpacingWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "spacing window min must not exceed max");
        SpacingWindow { min, max }
    }

    /// Whether `s` lies inside the window.
    pub fn contains(&self, s: u32) -> bool {
        s >= self.min && s <= self.max
    }
}

/// Width-dependent spacing windows (paper rules R1.1–R1.4).
///
/// `windows[i][j]` constrains the gap between a left wire of class `i`
/// (0 = A, 1 = B) and a right wire of class `j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpacingTable {
    /// Width defining class A (`Wa`).
    pub width_a: u32,
    /// Width defining class B (`Wb`).
    pub width_b: u32,
    /// `windows[left class][right class]`.
    pub windows: [[SpacingWindow; 2]; 2],
}

impl SpacingTable {
    /// Classifies a measured wire width, or `None` when it matches neither
    /// class (exempt from the table).
    pub fn classify(&self, width: u32) -> Option<WidthClass> {
        if width == self.width_a {
            Some(WidthClass::A)
        } else if width == self.width_b {
            Some(WidthClass::B)
        } else {
            None
        }
    }

    /// The window for a `(left, right)` class pair.
    pub fn window(&self, left: WidthClass, right: WidthClass) -> SpacingWindow {
        let i = usize::from(left == WidthClass::B);
        let j = usize::from(right == WidthClass::B);
        self.windows[i][j]
    }
}

/// A complete design-rule deck.
///
/// All lengths are in design-grid pixels, areas in pixels². `None` in an
/// optional field disables that rule, so the same checker covers both the
/// basic (academic) and advanced (industrial) settings of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleDeck {
    /// Human-readable deck name (e.g. `"synthnode3-advanced"`).
    pub name: String,
    /// R3-W: minimum feature width, both axes.
    pub min_width: u32,
    /// Complex setting: maximum wire-body width, both axes.
    pub max_width: Option<u32>,
    /// R3.1-W: the discrete set of allowed wire-body widths (sorted).
    pub discrete_widths: Option<Vec<u32>>,
    /// Persistence threshold (physical length) above which a bar counts as
    /// a *wire body* and the discrete-width rule applies.
    pub wire_min_len: u32,
    /// R1-S: minimum side-to-side spacing between facing edges in a row.
    pub min_spacing: u32,
    /// Complex setting: maximum side-to-side spacing between facing edges.
    pub max_spacing: Option<u32>,
    /// R2-E: minimum end-to-end (vertical) spacing between stacked shapes.
    pub min_end_to_end: u32,
    /// R4-A: minimum shape area.
    pub min_area: u64,
    /// R4-A: maximum shape area.
    pub max_area: Option<u64>,
    /// R1.1–R1.4: width-dependent spacing windows (advanced set).
    pub spacing_table: Option<SpacingTable>,
}

impl RuleDeck {
    /// A basic (academic-style) deck: min width/spacing/E2E and a minimum
    /// area, with no discrete or width-dependent constraints — the setting
    /// in which prior work (CUP, DiffPattern) was demonstrated.
    pub fn basic(
        name: &str,
        min_width: u32,
        min_spacing: u32,
        min_end_to_end: u32,
        min_area: u64,
    ) -> Self {
        RuleDeck {
            name: name.to_owned(),
            min_width,
            max_width: None,
            discrete_widths: None,
            wire_min_len: u32::MAX, // discrete rule disabled anyway
            min_spacing,
            max_spacing: None,
            min_end_to_end,
            min_area,
            max_area: None,
            spacing_table: None,
        }
    }

    /// Whether this deck has any advanced (discrete / table) constraint.
    pub fn is_advanced(&self) -> bool {
        self.discrete_widths.is_some() || self.spacing_table.is_some()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found: a zero
    /// minimum width/spacing, an unsorted or sub-minimum discrete set, an
    /// inverted area range, or a table window below the global minimum.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_width == 0 {
            return Err("min_width must be positive".into());
        }
        if self.min_spacing == 0 {
            return Err("min_spacing must be positive".into());
        }
        if let Some(ws) = &self.discrete_widths {
            if ws.is_empty() {
                return Err("discrete_widths must be non-empty when present".into());
            }
            if !ws.windows(2).all(|w| w[0] < w[1]) {
                return Err("discrete_widths must be strictly increasing".into());
            }
            if ws[0] < self.min_width {
                return Err("discrete widths must respect min_width".into());
            }
        }
        if let Some(max_area) = self.max_area {
            if max_area < self.min_area {
                return Err("max_area must be >= min_area".into());
            }
        }
        if let Some(t) = &self.spacing_table {
            if t.width_a >= t.width_b {
                return Err("spacing table requires width_a < width_b".into());
            }
            for row in &t.windows {
                for w in row {
                    if w.min < self.min_spacing {
                        return Err("table windows must respect min_spacing".into());
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for RuleDeck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (W>={}, S>={}, E2E>={}, A in {}..{}{})",
            self.name,
            self.min_width,
            self.min_spacing,
            self.min_end_to_end,
            self.min_area,
            self.max_area.map_or("inf".into(), |a| a.to_string()),
            if self.is_advanced() { ", advanced" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SpacingTable {
        SpacingTable {
            width_a: 3,
            width_b: 5,
            windows: [
                [SpacingWindow::new(3, 24), SpacingWindow::new(4, 24)],
                [SpacingWindow::new(4, 24), SpacingWindow::new(5, 24)],
            ],
        }
    }

    #[test]
    fn window_contains_bounds() {
        let w = SpacingWindow::new(3, 7);
        assert!(w.contains(3) && w.contains(7));
        assert!(!w.contains(2) && !w.contains(8));
    }

    #[test]
    fn classify_widths() {
        let t = table();
        assert_eq!(t.classify(3), Some(WidthClass::A));
        assert_eq!(t.classify(5), Some(WidthClass::B));
        assert_eq!(t.classify(4), None);
    }

    #[test]
    fn window_lookup_is_asymmetric() {
        let mut t = table();
        t.windows[0][1] = SpacingWindow::new(6, 9);
        assert_eq!(t.window(WidthClass::A, WidthClass::B).min, 6);
        assert_eq!(t.window(WidthClass::B, WidthClass::A).min, 4);
    }

    #[test]
    fn basic_deck_is_not_advanced() {
        let d = RuleDeck::basic("t", 3, 3, 4, 12);
        assert!(!d.is_advanced());
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_discrete_set() {
        let mut d = RuleDeck::basic("t", 3, 3, 4, 12);
        d.discrete_widths = Some(vec![5, 3]);
        assert!(d.validate().is_err());
        d.discrete_widths = Some(vec![2, 5]);
        assert!(d.validate().is_err());
        d.discrete_widths = Some(vec![3, 5]);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validate_rejects_inverted_area() {
        let mut d = RuleDeck::basic("t", 3, 3, 4, 20);
        d.max_area = Some(10);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_table_below_min_spacing() {
        let mut d = RuleDeck::basic("t", 3, 5, 4, 12);
        d.spacing_table = Some(table()); // windows start at 3 < min_spacing 5
        assert!(d.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn window_rejects_inverted() {
        let _ = SpacingWindow::new(5, 2);
    }
}
