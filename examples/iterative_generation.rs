//! Mini version of the paper's Figure 7: iterative generation with
//! PCA-based representative selection, tracking legal/unique counts and
//! the H1/H2 entropies per iteration — run through an engine `Session`,
//! whose iteration cursor makes the loop resumable (see
//! `examples/engine_service.rs` for the save/resume half).
//!
//! Run with: `cargo run --release --example iterative_generation`

use patternpaint::core::{PatternPaint, PipelineConfig, PpError};
use patternpaint::pdk::SynthNode;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    let cfg = PipelineConfig::quick();
    println!("pretraining + finetuning...");
    let mut pp = PatternPaint::builder(node.clone(), cfg)
        .seed(5)
        .pretrained()?;
    pp.finetune()?;
    let engine = pp.into_engine();

    println!("initial generation...");
    let mut session = engine.session();
    let (generated, legal) = session.initial_generation()?;
    // Starters seed the library so early iterations always have
    // representative material to select from.
    session.seed_starters();
    let s = session.library().stats();
    println!(
        "{:>5} {:>10} {:>12} {:>13} {:>7} {:>7}",
        "iter", "generated", "legal_total", "unique_total", "H1", "H2"
    );
    println!(
        "{:>5} {:>10} {:>12} {:>13} {:>7.2} {:>7.2}",
        1,
        generated,
        legal,
        session.library().len(),
        s.h1,
        s.h2
    );

    let stats = session.iterate(4)?;
    for st in &stats {
        println!(
            "{:>5} {:>10} {:>12} {:>13} {:>7.2} {:>7.2}",
            st.iteration, st.generated, st.legal_total, st.unique_total, st.h1, st.h2
        );
    }
    println!("\nExpected shape (paper Fig. 7): unique count and H2 grow with");
    println!("iterations; H1 drifts down as sub-region edits replicate topologies.");
    Ok(())
}
