//! A miniature serving deployment on a replicated fleet: one trained
//! checkpoint, N engine replicas each with its own supervised
//! scheduler, and the `Fleet` router in front — work stealing across
//! replica queues, fleet-wide admission bounds, session affinity with
//! live migration, and replica drain with redistribution. Tenants
//! still describe work as declarative `JobSpec`s; results are
//! bit-identical whatever the replica count, because jobs never split
//! across replicas. (The single-`Service` front door this example
//! used to demonstrate still works unchanged — see README migration
//! v5 for the mapping.)
//!
//! Run with: `cargo run --release --example engine_service`

use patternpaint::core::{
    Fleet, FleetOptions, JobSpec, MemStore, PatternPaint, PipelineConfig, PpError, QosClass,
    QueueLimits,
};
use patternpaint::pdk::SynthNode;
use std::time::Duration;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    println!("training one shared model (pretrain + finetune)...");
    let mut pp = PatternPaint::builder(node.clone(), PipelineConfig::quick())
        .seed(42)
        .pretrained()?;
    pp.finetune()?;

    // Freeze the trained stack, persist it once, and open a fleet of
    // two replicas over the checkpoint. Each replica deserializes its
    // own engine and runs its own scheduler + artifact store; the
    // router in front owns admission, placement, and failover.
    let store = MemStore::new();
    pp.into_engine().save(&store)?;
    let fleet = Fleet::open(
        &store,
        FleetOptions::new()
            .with_replicas(2)
            .with_job_limits(QueueLimits::default())
            // Shed incoming BestEffort work while the merged p90 of
            // recent submit→dispatch waits exceeds a second.
            .with_backpressure_shed(Duration::from_secs(1)),
    )?;
    println!("fleet up: {} replicas, one checkpoint", fleet.replicas());

    // Tenant A: a designer session pinned by affinity. The first job
    // creates the session on some replica and persists it there; the
    // follow-up resumes it in place — same library, same cursor, as
    // if one uninterrupted session had run both.
    let job = fleet.submit(
        JobSpec::iterative(1)
            .with_class(QosClass::Interactive)
            .with_seed(1001)
            .with_affinity("tenant-a"),
    )?;
    let first = job.wait().into_report().expect("tenant A round 1 runs");
    println!(
        "tenant-a round 1: generated {} | unique {}",
        first.generated,
        first.library.len()
    );
    let job = fleet.submit(
        JobSpec::iterative(1)
            .with_class(QosClass::Interactive)
            .with_seed(1001)
            .with_affinity("tenant-a"),
    )?;
    let second = job.wait().into_report().expect("tenant A round 2 resumes");
    println!(
        "tenant-a round 2 (resumed): generated {} | unique {}",
        second.generated,
        second.library.len()
    );

    // Background tenants: batch-class jobs the router spreads over
    // both replicas (shortest queue first, idle replicas steal).
    let batch: Vec<_> = (0..4u64)
        .map(|i| {
            fleet.submit(
                JobSpec::initial()
                    .with_class(QosClass::Batch)
                    .with_seed(2000 + i)
                    .with_budget(60),
            )
        })
        .collect::<Result<_, _>>()?;
    for (i, handle) in batch.into_iter().enumerate() {
        let outcome = handle.wait();
        match outcome.report() {
            Some(report) => println!(
                "batch-{i} done: generated {} | legal {}",
                report.generated, report.legal
            ),
            None => println!("batch-{i}: {outcome}"),
        }
    }

    // Retire replica 0. Anything queued there redistributes; tenant
    // A's next job finds its home replica gone, migrates the saved
    // session (PPSQ copy) to a survivor, and *continues* it.
    let stats = fleet.stats();
    println!(
        "draining replica 0 (held {} queued jobs)",
        stats.replicas[0].queued
    );
    fleet.drain(0);
    let job = fleet.submit(
        JobSpec::iterative(1)
            .with_class(QosClass::Interactive)
            .with_seed(1001)
            .with_affinity("tenant-a"),
    )?;
    let third = job
        .wait()
        .into_report()
        .expect("tenant A survives the drain");
    println!(
        "tenant-a round 3 (migrated): generated {} | unique {}",
        third.generated,
        third.library.len()
    );

    // Router observability: who ran what, and what the failover
    // machinery actually did.
    let stats = fleet.stats();
    for r in &stats.replicas {
        println!(
            "replica {} [{}]: {} micro-batches, {} samples",
            r.index,
            if r.healthy { "healthy" } else { "retired" },
            r.scheduler.micro_batches,
            r.scheduler.samples,
        );
    }
    println!(
        "router: steals {} | affinity hits/misses {}/{} | migrations {} | \
         failovers {} | redistributed {} | rejected depth/backpressure {}/{}",
        stats.steals,
        stats.affinity_hits,
        stats.affinity_misses,
        stats.migrations,
        stats.failovers,
        stats.redistributed,
        stats.rejected_depth,
        stats.rejected_backpressure,
    );
    println!(
        "fleet: {} submitted, {} finished, merged wait p90 {:.1}ms",
        stats.submitted.total(),
        stats.finished.total(),
        stats.aggregated.wait_p90_micros as f64 / 1e3,
    );
    Ok(())
}
