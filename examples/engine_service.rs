//! A miniature multi-tenant service on one engine, driven through the
//! QoS front door: tenants describe work as declarative `JobSpec`s
//! (kind, QoS class, deadline, budget, config shaping) and the
//! `Service` runs them over one shared model with class-weighted
//! fairness, bounded per-class admission, and scheduler observability.
//! One tenant deliberately overflows its admission bound, sees a typed
//! rejection, and retries once capacity frees — the shape of a real
//! PDK-loop deployment front end. (Engine/session persistence is
//! unchanged: `engine.save(&store)` et al., see `Engine::save`.)
//!
//! Run with: `cargo run --release --example engine_service`

use patternpaint::core::{
    JobSpec, PatternPaint, PipelineConfig, PpError, QosClass, QueueLimits, SchedulerOptions,
    Service, ServiceOptions, WeightedFair,
};
use patternpaint::pdk::SynthNode;
use std::time::Duration;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    println!("training one shared model (pretrain + finetune)...");
    let mut pp = PatternPaint::builder(node.clone(), PipelineConfig::quick())
        .seed(42)
        .pretrained()?;
    pp.finetune()?;
    // Freeze the trained stack into an immutable, shareable snapshot
    // and open the front door over it: a WeightedFair scheduler
    // (interactive 4 : batch 2 : best-effort 1 micro-batch shares) and
    // a deliberately tight interactive job bound so the rejection path
    // below is reproducible.
    let engine = pp.into_engine();
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 4,
            scheduler: SchedulerOptions::new().policy(WeightedFair),
            job_limits: QueueLimits {
                interactive: 1,
                batch: 4,
                best_effort: 8,
            },
        },
    );

    // Tenant A: a designer at a prompt — interactive class, a soft
    // deadline, the full iterative pipeline.
    let tenant_a = service.submit(
        JobSpec::iterative(2)
            .with_class(QosClass::Interactive)
            .with_deadline(Duration::from_secs(60))
            .with_seed(1001),
    )?;
    println!(
        "tenant-a admitted: job {} [{}]",
        tenant_a.id(),
        tenant_a.class()
    );

    // Tenant B: a background library grower — batch class, shaped
    // request (double variations, tighter selection, parallel tail)
    // and a sample budget.
    let mut cfg_b = *engine.config();
    cfg_b.variations = 2;
    cfg_b.select_k = 5;
    cfg_b.tail_threads = 2;
    let tenant_b = service.submit(
        JobSpec::iterative(2)
            .with_class(QosClass::Batch)
            .with_seed(2002)
            .with_config(cfg_b)
            .with_budget(500),
    )?;
    println!(
        "tenant-b admitted: job {} [{}]",
        tenant_b.id(),
        tenant_b.class()
    );

    // A second interactive tenant while tenant A still holds the only
    // interactive slot: admission control rejects it with a typed
    // error instead of queueing without bound.
    let impatient = JobSpec::initial()
        .with_class(QosClass::Interactive)
        .with_seed(3003)
        .with_budget(60);
    match service.submit(impatient.clone()) {
        Err(PpError::Rejected { reason }) => {
            println!("tenant-c rejected as expected: {reason}")
        }
        Err(e) => return Err(e),
        Ok(_) => println!("tenant-c admitted (tenant A already finished — fast machine!)"),
    }

    // Tenant A resolves; its interactive slot frees and the retry lands.
    let report_a = tenant_a
        .wait()
        .into_report()
        .expect("tenant A runs to completion");
    println!(
        "tenant-a done: generated {} | legal {} | unique {}",
        report_a.generated,
        report_a.legal,
        report_a.library.len()
    );
    let tenant_c = service.submit(impatient)?;
    println!(
        "tenant-c retry admitted: job {} [{}]",
        tenant_c.id(),
        tenant_c.class()
    );

    for (name, handle) in [("tenant-b", tenant_b), ("tenant-c", tenant_c)] {
        let outcome = handle.wait();
        match outcome.report() {
            Some(report) => {
                let stats = report.library.stats();
                println!(
                    "{name} done: generated {} | legal {} | unique {} | H1 {:.2} | H2 {:.2}",
                    report.generated, report.legal, stats.unique, stats.h1, stats.h2,
                );
            }
            None => println!("{name}: {outcome}"),
        }
    }

    // Scheduler observability: who actually got the micro-batches.
    let sched = service.scheduler_stats();
    println!(
        "scheduler [{}]: {} micro-batches, {} samples, wait {:.1}ms, turnaround {:.1}ms",
        sched.policy,
        sched.micro_batches,
        sched.samples,
        sched.wait_micros as f64 / 1e3,
        sched.turnaround_micros as f64 / 1e3,
    );
    for s in &sched.per_session {
        println!(
            "  session {} [{}]: {} micro-batches, {} samples",
            s.session, s.class, s.micro_batches, s.samples
        );
    }
    let jobs = service.stats();
    println!(
        "front door: {} submitted, {} rejected, {} finished",
        jobs.submitted.total(),
        jobs.rejected.total(),
        jobs.finished.total()
    );
    Ok(())
}
