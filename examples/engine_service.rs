//! A miniature multi-tenant service on one engine: two scripted
//! "tenants" with different request shapes share one trained model
//! through the round-robin scheduler, then everything is persisted and
//! resumed from a directory store — the shape of a real PDK-loop
//! deployment (train once, serve many, survive restarts).
//!
//! Run with: `cargo run --release --example engine_service`

use patternpaint::core::{
    DirStore, Engine, PatternPaint, PipelineConfig, PpError, Session, StreamOptions,
};
use patternpaint::pdk::SynthNode;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    println!("training one shared model (pretrain + finetune)...");
    let mut pp = PatternPaint::builder(node.clone(), PipelineConfig::quick())
        .seed(42)
        .pretrained()?;
    pp.finetune()?;
    // Freeze the trained stack into an immutable, shareable snapshot.
    let engine = pp.into_engine();

    // One worker pool serves every tenant fairly, micro-batch by
    // micro-batch; each tenant keeps its own library, seed and knobs.
    let scheduler = engine.scheduler(4);

    // Tenant A: the paper's default request shape.
    let mut tenant_a = engine
        .session_seeded(1001)
        .with_options(StreamOptions::default().with_progress(|p| {
            if p.completed == p.total {
                eprintln!("  [tenant-a] sampled {}/{}", p.completed, p.total);
            }
        }))
        .attach(&scheduler);

    // Tenant B: double variations, tighter selection, parallel tail.
    let mut cfg_b = *engine.config();
    cfg_b.variations = 2;
    cfg_b.select_k = 5;
    cfg_b.tail_threads = 2;
    let mut tenant_b = engine
        .session_seeded(2002)
        .with_config(cfg_b)?
        .with_options(StreamOptions::default().with_progress(|p| {
            if p.completed == p.total {
                eprintln!("  [tenant-b] sampled {}/{}", p.completed, p.total);
            }
        }))
        .attach(&scheduler);

    println!("serving two tenants concurrently on one model...");
    std::thread::scope(|s| {
        let a = s.spawn(|| -> Result<(), PpError> {
            tenant_a.initial_generation()?;
            tenant_a.seed_starters();
            tenant_a.iterate(2)?;
            Ok(())
        });
        let b = (|| -> Result<(), PpError> {
            tenant_b.initial_generation()?;
            tenant_b.seed_starters();
            tenant_b.iterate(2)?;
            Ok(())
        })();
        a.join().expect("tenant A thread")?;
        b
    })?;
    for (name, session) in [("tenant-a", &tenant_a), ("tenant-b", &tenant_b)] {
        let stats = session.library().stats();
        println!(
            "  {name}: generated {} | legal {} | unique {} | H1 {:.2} | H2 {:.2}",
            session.generated_total(),
            session.legal_total(),
            stats.unique,
            stats.h1,
            stats.h2,
        );
    }

    // Persist the whole deployment: model checkpoint + per-tenant
    // libraries and progress cursors.
    let root = std::env::temp_dir().join("patternpaint-engine-service");
    let store = DirStore::open(&root)?;
    engine.save(&store)?;
    tenant_a.save(&store, "tenant-a")?;
    tenant_b.save(&store, "tenant-b")?;
    println!("saved engine + sessions to {}", root.display());

    // "Restart": reopen everything and run one more iteration for
    // tenant A, exactly where it left off.
    let engine2 = Engine::open(&store)?;
    let mut resumed = Session::resume(&engine2, &store, "tenant-a")?;
    println!(
        "resumed tenant-a at iteration cursor {} with {} patterns",
        resumed.next_iteration(),
        resumed.library().len()
    );
    resumed.iterate(1)?;
    let stats = resumed.library().stats();
    println!(
        "  tenant-a after resume: unique {} | H1 {:.2} | H2 {:.2}",
        stats.unique, stats.h1, stats.h2
    );
    Ok(())
}
