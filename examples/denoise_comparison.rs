//! Mini version of the paper's Table III: the same raw diffusion batch
//! pushed through template-based denoising, non-local means, and no
//! denoising, then sign-off checked.
//!
//! Run with: `cargo run --release --example denoise_comparison`

use patternpaint::core::{PatternPaint, PipelineConfig, PpError};
use patternpaint::drc::check_layout;
use patternpaint::inpaint::{Denoiser, MaskSet, NlmDenoiser, TemplateDenoiser, ThresholdDenoiser};
use patternpaint::pdk::SynthNode;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    let cfg = PipelineConfig::quick();
    println!("pretraining + finetuning a small model...");
    let mut pp = PatternPaint::builder(node.clone(), cfg)
        .seed(11)
        .pretrained()?;
    pp.finetune()?;

    // One raw batch: every starter with one default and one horizontal mask.
    let side = node.clip();
    let mut jobs = Vec::new();
    for (i, s) in pp.starters().iter().enumerate() {
        jobs.push((s.clone(), MaskSet::Default.masks(side)[i % 5].clone()));
        jobs.push((s.clone(), MaskSet::Horizontal.masks(side)[i % 5].clone()));
    }
    println!("generating {} raw samples...", jobs.len());
    let raw = pp.generate_raw(&jobs, 3)?;

    let denoisers: [&dyn Denoiser; 3] = [
        &TemplateDenoiser::new(2),
        &NlmDenoiser::new(),
        &ThresholdDenoiser::new(),
    ];
    println!("\n{:>10} {:>8} {:>9}", "denoiser", "legal", "success%");
    for d in denoisers {
        let legal = raw
            .iter()
            .filter(|s| {
                let out = d.denoise(&s.raw, &s.template);
                out.metal_area() > 0 && check_layout(&out, node.rules()).is_clean()
            })
            .count();
        println!(
            "{:>10} {:>8} {:>8.1}%",
            d.name(),
            legal,
            100.0 * legal as f64 / raw.len() as f64,
        );
    }
    println!("\nExpected shape (paper Table III): template >> nlm >> none (~0).");
    Ok(())
}
