//! DFM scenario: run sign-off DRC on layouts and read the violation
//! report — the validation loop every generated pattern goes through.
//!
//! Run with: `cargo run --release --example drc_report`

use patternpaint::drc::check_layout;
use patternpaint::geometry::{Layout, Rect};
use patternpaint::pdk::SynthNode;

fn main() {
    let node = SynthNode::default();
    println!("rule deck: {}\n", node.rules());

    // A clean starter pattern passes.
    let starter = &node.starter_patterns()[2];
    let report = check_layout(starter, node.rules());
    println!("starter pattern 3: {}", report);

    // Introduce a classic set of violations by hand.
    let mut bad = Layout::new(32, 32);
    bad.fill_rect(Rect::new(4, 4, 2, 20)); // narrower than min width
    bad.fill_rect(Rect::new(8, 4, 4, 20)); // width 4 not in {3, 5}; gap 2 < 3
    bad.fill_rect(Rect::new(20, 4, 3, 6)); // stacked with a 2px E2E gap
    bad.fill_rect(Rect::new(20, 12, 3, 6));
    bad.fill_rect(Rect::new(26, 26, 3, 3)); // area 9 < 12

    let report = check_layout(&bad, node.rules());
    println!("hand-broken layout: {}", report);
    println!("violations by rule:");
    for (rule, count) in report.histogram() {
        println!("  {rule}: {count}");
    }

    // The basic (academic) deck misses the advanced-rule violations —
    // the gap prior work falls into.
    let basic = check_layout(&bad, node.basic_rules());
    println!(
        "\nsame layout under the basic deck: {} violations (advanced deck found {})",
        basic.len(),
        report.len(),
    );
}
