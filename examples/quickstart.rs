//! Quickstart: generate DR-clean layout patterns from 20 starters.
//!
//! Assembles the pipeline with `PipelineBuilder`, pretrains the small
//! diffusion substrate on the synthetic foundation corpus, finetunes on
//! the 20 starter patterns, freezes the trained stack into an `Engine`
//! snapshot, and streams one initial generation round through a
//! `Session` with live progress before printing the library statistics
//! plus a sample pattern.
//!
//! Run with: `cargo run --release --example quickstart`

use patternpaint::core::{PatternPaint, PipelineConfig, PpError, StreamOptions};
use patternpaint::geometry::render::to_ascii_pair;
use patternpaint::pdk::SynthNode;

fn main() -> Result<(), PpError> {
    let node = SynthNode::default();
    println!(
        "node: {} ({} tracks, clip {}px)",
        node.rules(),
        node.track_count(),
        node.clip()
    );

    let cfg = PipelineConfig::quick();
    println!("pretraining the base inpainting model (stand-in for a public checkpoint)...");
    let mut pp = PatternPaint::builder(node.clone(), cfg)
        .seed(42)
        .pretrained()?;

    println!(
        "few-shot finetuning on {} starters (DreamBooth-style)...",
        pp.starters().len()
    );
    let report = pp.finetune()?;
    println!("  finetune tail loss: {:.4}", report.tail_loss);

    // Freeze the trained stack: the engine snapshot is immutable and
    // shareable; this single-workload run uses one session of it (see
    // examples/engine_service.rs for many sessions on one engine).
    let engine = pp.into_engine();

    println!("initial generation: starters x 10 masks x v variations...");
    // The round consumes the generation stream; a progress hook meters
    // it micro-batch by micro-batch.
    let mut session = engine
        .session()
        .with_options(StreamOptions::default().with_progress(|p| {
            if p.completed % 50 == 0 || p.completed == p.total {
                eprintln!("  sampled {}/{}", p.completed, p.total);
            }
        }));
    let (generated, legal) = session.initial_generation()?;
    let stats = session.library().stats();
    println!(
        "  generated {} | legal {} ({:.1}%) | unique {} | H1 {:.2} | H2 {:.2}",
        generated,
        legal,
        100.0 * legal as f64 / generated.max(1) as f64,
        stats.unique,
        stats.h1,
        stats.h2,
    );

    if let Some(first) = session.library().patterns().first() {
        println!("\nstarter (left) vs generated DR-clean variation (right):");
        println!("{}", to_ascii_pair(&engine.starters()[0], first));
    } else {
        println!(
            "no legal patterns this run — try more pretraining steps (PipelineConfig::standard)"
        );
    }
    Ok(())
}
