//! Quickstart: generate DR-clean layout patterns from 20 starters.
//!
//! Pretrains the small diffusion substrate on the synthetic foundation
//! corpus, finetunes on the 20 starter patterns, runs one initial
//! generation round, and prints the library statistics plus a sample
//! pattern.
//!
//! Run with: `cargo run --release --example quickstart`

use patternpaint::core::{PatternPaint, PipelineConfig};
use patternpaint::geometry::render::to_ascii_pair;
use patternpaint::pdk::SynthNode;

fn main() {
    let node = SynthNode::default();
    println!("node: {} ({} tracks, clip {}px)", node.rules(), node.track_count(), node.clip());

    let cfg = PipelineConfig::quick();
    println!("pretraining the base inpainting model (stand-in for a public checkpoint)...");
    let mut pp = PatternPaint::pretrained(node.clone(), cfg, 42);

    println!("few-shot finetuning on {} starters (DreamBooth-style)...", pp.starters().len());
    let report = pp.finetune();
    println!("  finetune tail loss: {:.4}", report.tail_loss);

    println!("initial generation: starters x 10 masks x v variations...");
    let round = pp.initial_generation();
    let stats = round.library.stats();
    println!(
        "  generated {} | legal {} ({:.1}%) | unique {} | H1 {:.2} | H2 {:.2}",
        round.generated,
        round.legal,
        100.0 * round.legal as f64 / round.generated.max(1) as f64,
        stats.unique,
        stats.h1,
        stats.h2,
    );

    if let Some(first) = round.library.patterns().first() {
        println!("\nstarter (left) vs generated DR-clean variation (right):");
        println!("{}", to_ascii_pair(&pp.starters()[0], first));
    } else {
        println!("no legal patterns this run — try more pretraining steps (PipelineConfig::standard)");
    }
}
