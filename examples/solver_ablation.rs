//! Mini version of the paper's Figure 9: nonlinear-solver runtime and
//! success rate versus topology size under three rule settings.
//!
//! Run with: `cargo run --release --example solver_ablation`

use patternpaint::solver::{random_topology, LegalizeSolver, SolverSetting};
use std::time::Instant;

fn main() {
    let sizes = [10usize, 20, 40, 60];
    let trials = 6u64;
    println!(
        "{:>6} {:>18} {:>10} {:>12}",
        "size", "setting", "success", "avg runtime"
    );
    for &size in &sizes {
        for setting in SolverSetting::ALL {
            let solver = LegalizeSolver::new(setting);
            let start = Instant::now();
            let ok = (0..trials)
                .filter(|&seed| solver.solve(&random_topology(size, seed), seed).success)
                .count();
            let avg = start.elapsed().as_secs_f64() / trials as f64;
            println!(
                "{:>6} {:>18} {:>7}/{} {:>11.4}s",
                size,
                setting.to_string(),
                ok,
                trials,
                avg,
            );
        }
    }
    println!("\nThe takeaway (paper §VI.1): runtime climbs and success collapses as");
    println!("rules harden — while PatternPaint's denoising path is flat and fast.");
}
