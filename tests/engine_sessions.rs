//! The engine redesign's headline guarantees, asserted end to end:
//!
//! * **Determinism under sharing** — two sessions with different
//!   configs, interleaved on one engine's scheduler and consumed
//!   concurrently, produce libraries bit-identical (contents, insertion
//!   order, `(generated, legal)` counts) to two solo `PatternPaint`
//!   pipelines.
//! * **Cancellation isolation** — cancelling one session mid-stream
//!   leaves the other's results untouched.
//! * **Resumability** — a checkpoint + library save/load cycle through
//!   an `ArtifactStore` resumes `iterative_generation` with output
//!   identical to an uninterrupted run.
//! * **Error transparency** — an engine-level persistence failure
//!   chains through `source()` down to the io root cause.

use patternpaint::core::{
    ArtifactError, ArtifactStore, CancelToken, DirStore, Engine, MemStore, PatternPaint,
    PipelineConfig, PpError, Session, StreamOptions,
};
use patternpaint::pdk::SynthNode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Two deliberately different request shapes over one model
/// architecture (which must stay the engine's).
fn config_a() -> PipelineConfig {
    PipelineConfig::tiny()
}

fn config_b() -> PipelineConfig {
    let mut cfg = PipelineConfig::tiny();
    cfg.variations = 2;
    cfg.batch_size = 1;
    cfg.tail_threads = 2;
    cfg.select_k = 2;
    cfg.samples_per_iteration = 8;
    cfg
}

/// A solo pipeline with `cfg`/`seed` whose weights are replaced by the
/// shared engine's — the reference a session must match bit for bit.
fn solo_with_engine_weights(engine: &Engine, cfg: PipelineConfig, seed: u64) -> PatternPaint {
    let mut weights = Vec::new();
    let mut donor = PatternPaint::from_engine(engine.clone());
    donor
        .save_weights(&mut weights)
        .expect("vec writer cannot fail");
    let mut solo =
        PatternPaint::untrained(engine.node().clone(), cfg, seed).expect("config is valid");
    solo.load_weights(weights.as_slice())
        .expect("same architecture");
    solo
}

#[test]
fn concurrent_sessions_match_solo_pipelines_bit_for_bit() {
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(11)
        .untrained_engine()
        .expect("tiny config is valid");
    let (cfg_a, cfg_b) = (config_a(), config_b());
    let (seed_a, seed_b) = (101u64, 202u64);

    // Reference: two solo pipelines over the same weights.
    let solo_a = solo_with_engine_weights(&engine, cfg_a, seed_a);
    let solo_b = solo_with_engine_weights(&engine, cfg_b, seed_b);
    let round_a = solo_a.initial_generation().expect("solo A runs");
    let round_b = solo_b.initial_generation().expect("solo B runs");
    let mut lib_a = round_a.library.clone();
    lib_a.extend(solo_a.starters().iter().cloned());
    let stats_a = solo_a
        .iterative_generation(&mut lib_a, 2, round_a.legal)
        .expect("solo A iterates");
    let mut lib_b = round_b.library.clone();
    lib_b.extend(solo_b.starters().iter().cloned());
    let stats_b = solo_b
        .iterative_generation(&mut lib_b, 2, round_b.legal)
        .expect("solo B iterates");

    // Two sessions, one scheduler, run on concurrent threads so their
    // micro-batches genuinely interleave on the shared worker pool.
    let scheduler = engine.scheduler(3);
    let mut sess_a = engine
        .session_seeded(seed_a)
        .with_config(cfg_a)
        .expect("config A fits the engine")
        .attach(&scheduler);
    let mut sess_b = engine
        .session_seeded(seed_b)
        .with_config(cfg_b)
        .expect("config B fits the engine")
        .attach(&scheduler);
    fn run(sess: &mut Session) -> ((usize, usize), Vec<patternpaint::core::IterationStats>) {
        let counts = sess.initial_generation().expect("session round runs");
        sess.seed_starters();
        let stats = sess.iterate(2).expect("session iterates");
        (counts, stats)
    }
    let ((counts_a, sstats_a), (counts_b, sstats_b)) = std::thread::scope(|s| {
        let ha = s.spawn(|| run(&mut sess_a));
        let rb = run(&mut sess_b);
        (ha.join().expect("session A thread"), rb)
    });

    assert_eq!(counts_a, (round_a.generated, round_a.legal));
    assert_eq!(counts_b, (round_b.generated, round_b.legal));
    assert_eq!(sstats_a, stats_a, "session A iteration stats diverged");
    assert_eq!(sstats_b, stats_b, "session B iteration stats diverged");
    // Full library equality covers contents *and* insertion order.
    assert_eq!(sess_a.library().patterns(), lib_a.patterns());
    assert_eq!(sess_b.library().patterns(), lib_b.patterns());
}

#[test]
fn cancelling_one_session_leaves_the_other_intact() {
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(5)
        .untrained_engine()
        .expect("tiny config is valid");
    // Reference result for the surviving session.
    let solo_b = solo_with_engine_weights(&engine, config_b(), 7);
    let round_b = solo_b.initial_generation().expect("solo B runs");

    let scheduler = engine.scheduler(2);
    let cancel = CancelToken::new();
    let seen = Arc::new(AtomicUsize::new(0));
    let cancel_in_hook = cancel.clone();
    let seen_in_hook = Arc::clone(&seen);
    let opts = StreamOptions::default()
        .with_cancel(cancel.clone())
        .with_progress(move |p: patternpaint::core::Progress| {
            seen_in_hook.store(p.completed, Ordering::SeqCst);
            // Cancel session A as soon as its first micro-batch lands.
            cancel_in_hook.cancel();
        });
    let mut sess_a = engine
        .session_seeded(1)
        .with_options(opts)
        .attach(&scheduler);
    let mut sess_b = engine
        .session_seeded(7)
        .with_config(config_b())
        .expect("config B fits the engine")
        .attach(&scheduler);

    let (res_a, res_b) = std::thread::scope(|s| {
        let ha = s.spawn(|| sess_a.initial_generation());
        let rb = sess_b.initial_generation();
        (ha.join().expect("session A thread"), rb)
    });
    let (gen_a, _) = res_a.expect("cancellation is not an error");
    let total_a = 200; // 20 starters x 10 masks x 1 variation
    assert!(gen_a >= 1, "cancelled session must keep partial results");
    assert!(
        gen_a < total_a,
        "cancellation failed to stop session A early ({gen_a}/{total_a})"
    );
    let (gen_b, legal_b) = res_b.expect("session B completes");
    assert_eq!((gen_b, legal_b), (round_b.generated, round_b.legal));
    assert_eq!(sess_b.library().patterns(), round_b.library.patterns());
}

#[test]
fn checkpointed_run_resumes_identically_to_uninterrupted() {
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(21)
        .untrained_engine()
        .expect("tiny config is valid");

    // Uninterrupted: initial round + starters + two iterations.
    let mut uninterrupted = engine.session_seeded(33);
    uninterrupted.initial_generation().expect("round runs");
    uninterrupted.seed_starters();
    let full_stats = uninterrupted.iterate(2).expect("iterations run");

    // Interrupted twin: stop after one iteration, persist everything
    // (engine checkpoint + session library) to a directory store, then
    // reload both in a "new process" and finish.
    let root = std::env::temp_dir().join(format!("pp-engine-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = DirStore::open(&root).expect("temp store opens");
    let mut half = engine.session_seeded(33);
    half.initial_generation().expect("round runs");
    half.seed_starters();
    let first_half = half.iterate(1).expect("first iteration runs");
    engine.save(&store).expect("engine checkpoint saves");
    half.save(&store, "resume-test").expect("session saves");
    drop(half);
    drop(engine);

    let engine2 = Engine::open(&store).expect("engine reopens");
    let mut resumed = Session::resume(&engine2, &store, "resume-test").expect("session resumes");
    assert_eq!(resumed.next_iteration(), 1);
    let second_half = resumed.iterate(1).expect("second iteration runs");

    let stitched: Vec<_> = first_half.iter().chain(&second_half).copied().collect();
    assert_eq!(stitched, full_stats, "resumed stats diverged");
    assert_eq!(
        resumed.library().patterns(),
        uninterrupted.library().patterns(),
        "resumed library diverged"
    );
    assert_eq!(resumed.legal_total(), uninterrupted.legal_total());
    assert_eq!(resumed.generated_total(), uninterrupted.generated_total());
    let _ = std::fs::remove_dir_all(&root);
}

/// An artifact store whose writes always fail, for exercising the
/// engine-level error chain.
struct BrokenStore;

impl ArtifactStore for BrokenStore {
    fn put(&self, key: &str, _bytes: &[u8]) -> Result<(), ArtifactError> {
        Err(ArtifactError::Io {
            path: key.into(),
            source: std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"),
        })
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, ArtifactError> {
        self.put(key, &[]).map(|_| Vec::new())
    }

    fn contains(&self, _key: &str) -> Result<bool, ArtifactError> {
        Ok(false)
    }

    fn list(&self) -> Result<Vec<String>, ArtifactError> {
        Ok(Vec::new())
    }
}

#[test]
fn engine_save_failure_chains_to_the_io_root() {
    use std::error::Error as _;
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(2)
        .untrained_engine()
        .expect("tiny config is valid");
    let err = engine.save(&BrokenStore).expect_err("save must fail");
    assert!(matches!(err, PpError::Artifact(_)), "wrong error: {err}");
    // PpError -> ArtifactError -> io::Error: the full chain.
    let artifact = err.source().expect("artifact layer in the chain");
    let root = artifact.source().expect("io root in the chain");
    assert!(root.to_string().contains("disk full"), "root was: {root}");
    // And the session side: resuming from an empty store is Missing.
    let err = Session::resume(&engine, &MemStore::new(), "ghost").expect_err("must fail");
    assert!(
        matches!(
            &err,
            PpError::Artifact(ArtifactError::Missing { key }) if key.contains("ghost")
        ),
        "wrong error: {err}"
    );
}
