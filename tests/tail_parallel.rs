//! The parallel round tail must be invisible: for every tail thread
//! count the library contents, insertion order and `(generated, legal)`
//! counts must match the serial path bit for bit — including under
//! cancellation and mid-stream sampler errors.

use patternpaint::core::stages::{SampleStream, Sampler};
use patternpaint::core::{
    CancelToken, JobSet, PatternLibrary, PatternPaint, PipelineConfig, PpError, RawSample,
    StreamOptions,
};
use patternpaint::geometry::GrayImage;
use patternpaint::pdk::SynthNode;
use std::sync::Arc;

fn tiny_pipeline() -> PatternPaint {
    PatternPaint::pretrained(SynthNode::small(), PipelineConfig::tiny(), 7)
        .expect("tiny config is valid")
}

#[test]
fn tail_parallel_matches_serial() {
    let pp = tiny_pipeline();
    let request = pp.initial_request();
    let serial = pp
        .run_request(&request, &StreamOptions::default().with_tail_threads(0))
        .expect("serial round runs");
    assert_eq!(serial.generated, 200);
    assert!(!serial.library.is_empty(), "tiny round found nothing");
    for threads in [1, 2, 4] {
        let parallel = pp
            .run_request(
                &request,
                &StreamOptions::default().with_tail_threads(threads),
            )
            .expect("parallel round runs");
        assert_eq!(parallel.generated, serial.generated, "threads={threads}");
        assert_eq!(parallel.legal, serial.legal, "threads={threads}");
        assert_eq!(
            parallel.library.patterns(),
            serial.library.patterns(),
            "library diverged at tail_threads={threads}"
        );
        let (a, b) = (parallel.library.stats(), serial.library.stats());
        assert_eq!(a.unique, b.unique);
        assert_eq!(a.h1, b.h1, "incremental stats are order-canonical");
        assert_eq!(a.h2, b.h2);
    }
}

#[test]
fn validate_into_parallel_matches_serial() {
    let serial_pp = tiny_pipeline();
    let mut cfg = PipelineConfig::tiny();
    cfg.tail_threads = 3;
    let parallel_pp =
        PatternPaint::pretrained(SynthNode::small(), cfg, 7).expect("tiny config is valid");
    let request = serial_pp.initial_request();
    let raw = serial_pp
        .generate_jobs(request.jobs(), request.seed())
        .expect("jobs run");
    let mut serial_lib = PatternLibrary::new();
    let serial_counts = serial_pp.validate_into(&raw, &mut serial_lib);
    let mut parallel_lib = PatternLibrary::new();
    let parallel_counts = parallel_pp.validate_into(&raw, &mut parallel_lib);
    assert_eq!(parallel_counts, serial_counts);
    assert_eq!(parallel_lib.patterns(), serial_lib.patterns());
}

/// Wraps a sampler, recording every sample its stream delivers.
struct RecordingSampler {
    inner: Arc<dyn Sampler>,
    seen: Arc<std::sync::Mutex<Vec<RawSample>>>,
}

impl Sampler for RecordingSampler {
    fn name(&self) -> &str {
        "recording"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        self.inner.sample(jobs, seed)
    }

    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        let inner = self.inner.sample_stream(jobs, seed, opts)?;
        let seen = Arc::clone(&self.seen);
        Ok(Box::new(inner.inspect(move |item| {
            if let Ok(sample) = item {
                seen.lock().expect("recorder lock").push(sample.clone());
            }
        })))
    }
}

#[test]
fn cancellation_mid_round_matches_serial_replay_of_delivered_samples() {
    // Cancellation timing makes *which* samples get delivered
    // nondeterministic (each sampling worker cuts its own chunk short),
    // so the invariant to pin is: whatever the stream delivered, the
    // tail — serial or parallel — admitted exactly that sequence, in
    // order. We tee the delivered samples out and replay them serially.
    let pp = tiny_pipeline();
    let total = pp.initial_request().jobs().len();
    for threads in [0usize, 1, 2, 4] {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let recording = PatternPaint::builder(SynthNode::small(), PipelineConfig::tiny())
            .seed(7)
            .sampler(RecordingSampler {
                inner: pp.sampler(),
                seen: Arc::clone(&seen),
            })
            .untrained()
            .expect("tiny config is valid");
        let request = recording.initial_request();
        let cancel = CancelToken::new();
        let hook_cancel = cancel.clone();
        let opts = StreamOptions::default()
            .with_cancel(cancel)
            .with_capacity(1)
            .expect("positive capacity is valid")
            .with_tail_threads(threads)
            .with_progress(move |_| hook_cancel.cancel());
        let round = recording.run_request(&request, &opts).expect("round runs");
        let seen = seen.lock().expect("recorder lock");
        assert!(
            round.generated >= 1 && round.generated < total,
            "cancellation failed to stop the round early at tail_threads={threads} \
             ({}/{total})",
            round.generated,
        );
        assert_eq!(round.generated, seen.len(), "threads={threads}");
        let mut replay = PatternLibrary::new();
        let (_, legal) = pp.validate_into(&seen, &mut replay);
        assert_eq!(round.legal, legal, "threads={threads}");
        assert_eq!(
            round.library.patterns(),
            replay.patterns(),
            "cancelled round diverged from a serial replay at tail_threads={threads}"
        );
    }
}

/// A sampler whose stream fails after a fixed number of samples.
struct FailingSampler {
    good: usize,
}

impl Sampler for FailingSampler {
    fn name(&self) -> &str {
        "failing"
    }

    fn sample(&self, jobs: &JobSet, _seed: u64) -> Result<Vec<RawSample>, PpError> {
        Ok(jobs
            .iter()
            .take(self.good)
            .map(|(template, _)| RawSample {
                template: Arc::clone(template),
                raw: GrayImage::from_layout(template),
            })
            .collect())
    }

    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        _opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        let good = self.sample(jobs, seed)?;
        let iter = good
            .into_iter()
            .map(Ok)
            .chain(std::iter::once(Err(PpError::Model(
                "injected failure".into(),
            ))));
        Ok(Box::new(iter))
    }
}

#[test]
fn mid_stream_error_surfaces_with_prefix_admissions() {
    let node = SynthNode::small();
    let make = |tail_threads: usize| {
        let mut cfg = PipelineConfig::tiny();
        cfg.tail_threads = tail_threads;
        PatternPaint::builder(node.clone(), cfg)
            .seed(3)
            .sampler(FailingSampler { good: 7 })
            .untrained()
            .expect("valid config")
    };
    let serial_pp = make(0);
    let request = serial_pp.initial_request();
    let mut serial_lib = PatternLibrary::new();
    let serial_err = serial_pp
        .run_request_into(&request, &StreamOptions::default(), &mut serial_lib)
        .expect_err("stream error must surface");
    assert!(matches!(serial_err, PpError::Model(_)));
    // Echoed starters are DR-clean, so the 7 good samples all admit.
    assert!(!serial_lib.is_empty());
    for threads in [1usize, 2, 4] {
        let pp = make(threads);
        let mut lib = PatternLibrary::new();
        let err = pp
            .run_request_into(&request, &StreamOptions::default(), &mut lib)
            .expect_err("stream error must surface");
        assert!(matches!(err, PpError::Model(_)), "threads={threads}");
        assert_eq!(
            lib.patterns(),
            serial_lib.patterns(),
            "error-path admissions diverged at tail_threads={threads}"
        );
    }
}
