//! Chaos suite for the supervised runtime: deterministic fault
//! injection ([`FaultPlan`]) against the scheduler/service stack,
//! proving the ISSUE-6 robustness contract end to end:
//!
//! * **Isolation** — an injected worker panic, transient error, or
//!   stall damages only the tenant it targets; concurrent clean
//!   tenants produce libraries bit-identical to solo runs.
//! * **Retry** — jobs with a `RetryPolicy` absorb transient faults and
//!   resolve to `Completed` with the same library a never-faulted run
//!   produces; exhausted retries resolve to `Failed` with a typed
//!   `WorkerPanic`.
//! * **Survival** — after any fault, `submit()` and `stats()` both
//!   keep working (no poisoned mutex anywhere), and a worker loop
//!   killed by an escaped panic is respawned by its supervisor.
//! * **Deadlines** — hard deadlines resolve to `JobOutcome::TimedOut`
//!   carrying the partial results that beat the clock.
//!
//! `ci.sh --chaos` sweeps `seeded_fault_plan_is_always_survivable`
//! over fixed seeds via `PP_CHAOS_SEED`.

use patternpaint::core::{
    Engine, Fault, FaultPlan, GenerationRequest, JobOutcome, JobSet, JobSpec, PipelineConfig,
    PpError, RetryPolicy, SchedPolicy, SchedulerOptions, Service, ServiceOptions,
};
use patternpaint::pdk::SynthNode;
use pp_inpaint::MaskSet;
use std::time::{Duration, Instant};

fn tiny_engine(seed: u64) -> Engine {
    Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(seed)
        .untrained_engine()
        .expect("tiny config is valid")
}

/// An explicit request of `n` jobs cycling the engine's starters and
/// masks, seeded per tenant.
fn request(engine: &Engine, n: usize, seed: u64) -> GenerationRequest {
    let masks = MaskSet::Default.masks(engine.node().clip());
    GenerationRequest::new(JobSet::cycle(engine.starters(), &masks, n), seed)
}

/// The library a never-faulted solo run of `request(n, seed)` grows —
/// the bit-identity reference for every tenant below.
fn solo_patterns(engine: &Engine, n: usize, seed: u64) -> Vec<patternpaint::geometry::Layout> {
    let mut solo = engine.session_seeded(seed);
    solo.run_request(&request(engine, n, seed))
        .expect("solo round runs");
    solo.into_library().patterns().to_vec()
}

fn service_with_faults(engine: &Engine, threads: usize, faults: FaultPlan) -> Service {
    Service::new(
        engine,
        ServiceOptions {
            threads,
            scheduler: SchedulerOptions::new().faults(faults),
            ..Default::default()
        },
    )
}

/// Spins until `cond` holds or a generous deadline passes (the
/// condition is about counters that move within microseconds; the
/// deadline only bounds a genuinely broken run).
fn spin_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// The acceptance-criteria scenario: a worker panic, a transient
/// error, and a stall injected across three concurrent tenants (plus
/// two clean ones). Clean tenants are bit-identical to solo runs,
/// faulted tenants retry to `Completed` with the *same* library a
/// never-faulted run produces, and the pool survives with working
/// `submit()` + `stats()`.
#[test]
fn injected_faults_are_absorbed_by_retry_and_isolated_from_clean_tenants() {
    let engine = tiny_engine(1);
    // Session ids are allocated in submit order starting at 1, so the
    // plan targets: job 1 = panic, job 2 = transient error, job 3 =
    // stall (harmless), jobs 4-5 = clean.
    let plan = FaultPlan::new()
        .inject(1, Fault::PanicAt { batch: 0 })
        .inject(2, Fault::ErrAt { batch: 1 })
        .inject(
            3,
            Fault::StallFor {
                batch: 0,
                duration: Duration::from_millis(5),
            },
        );
    let service = service_with_faults(&engine, 2, plan);
    let retry = RetryPolicy::new(3, Duration::from_millis(1));
    let seeds = [100u64, 200, 300, 400, 500];
    let solos: Vec<_> = seeds
        .iter()
        .map(|&s| solo_patterns(&engine, 8, s))
        .collect();
    let handles: Vec<_> = seeds
        .iter()
        .map(|&s| {
            service
                .submit(JobSpec::raw(request(&engine, 8, s)).with_retry(retry))
                .expect("admitted")
        })
        .collect();
    // Jobs 1-2 needed a retry; everyone resolves to Completed with the
    // exact solo library (retries re-run from scratch on the same
    // seed, so a retried run is indistinguishable from a clean one).
    let expected_attempts = [2u32, 2, 1, 1, 1];
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait();
        assert!(outcome.is_completed(), "tenant {i} outcome: {outcome}");
        let report = outcome.into_report().expect("completed carries a report");
        assert_eq!(
            report.attempts, expected_attempts[i],
            "tenant {i} attempt count"
        );
        assert_eq!(
            report.library.patterns(),
            &solos[i][..],
            "tenant {i} library diverged from its solo run"
        );
    }
    // Observability: the panic and the retries are all accounted.
    let sched = service.scheduler_stats();
    assert_eq!(sched.worker_panics, 1, "one injected panic was caught");
    assert_eq!(sched.workers_lost, 0, "the panic never escaped the batch");
    assert_eq!(service.stats().retries, 2, "panic + transient error");
    // Survival: a post-fault submit and stats both work.
    let post = service
        .submit(JobSpec::raw(request(&engine, 4, 900)))
        .expect("post-fault submit succeeds");
    assert!(post.wait().is_completed());
    assert_eq!(service.stats().active.total(), 0);
}

/// When every attempt hits an injected panic, the job fails *cleanly*:
/// `Failed` wrapping a typed `WorkerPanic`, never a hang or a poisoned
/// mutex — and the pool keeps serving afterwards.
#[test]
fn exhausted_retries_fail_with_a_typed_worker_panic() {
    let engine = tiny_engine(2);
    // Two scheduled panics for session 1: attempts 1 and 2 both die.
    let plan = FaultPlan::new()
        .inject(1, Fault::PanicAt { batch: 0 })
        .inject(1, Fault::PanicAt { batch: 0 });
    let service = service_with_faults(&engine, 2, plan);
    let handle = service
        .submit(
            JobSpec::raw(request(&engine, 6, 50))
                .with_retry(RetryPolicy::new(2, Duration::from_millis(1))),
        )
        .expect("admitted");
    match handle.wait() {
        JobOutcome::Failed(e) => {
            assert!(matches!(e, PpError::WorkerPanic { .. }), "wrong error: {e}");
            assert!(e.to_string().contains("injected fault"), "detail lost: {e}");
        }
        other => panic!("expected Failed, got: {other}"),
    }
    let sched = service.scheduler_stats();
    assert_eq!(sched.worker_panics, 2, "both attempts' panics were caught");
    assert_eq!(service.stats().retries, 1, "one re-run before giving up");
    // Survival after exhaustion.
    let post = service
        .submit(JobSpec::raw(request(&engine, 4, 60)))
        .expect("post-fault submit succeeds");
    assert!(post.wait().is_completed());
}

/// Without a retry policy a worker panic fails the job on the first
/// attempt — retrying is opt-in, never a silent default.
#[test]
fn faults_without_a_retry_policy_fail_fast() {
    let engine = tiny_engine(3);
    let plan = FaultPlan::new().inject(1, Fault::PanicAt { batch: 0 });
    let service = service_with_faults(&engine, 1, plan);
    let handle = service
        .submit(JobSpec::raw(request(&engine, 4, 70)))
        .expect("admitted");
    let outcome = handle.wait();
    assert!(
        matches!(&outcome, JobOutcome::Failed(PpError::WorkerPanic { .. })),
        "expected Failed(WorkerPanic), got: {outcome}"
    );
    assert_eq!(service.stats().retries, 0);
}

/// The `ci.sh --chaos` entry point: a *seeded* fault plan (panics,
/// errors, stalls assigned pseudo-randomly per tenant) must always be
/// survivable — whatever `PP_CHAOS_SEED` says, every tenant resolves
/// to `Completed` with its exact solo library, because one injected
/// fault is always within a 3-attempt retry budget.
#[test]
fn seeded_fault_plan_is_always_survivable() {
    let seed: u64 = std::env::var("PP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A05);
    let engine = tiny_engine(4);
    // One fault per session 1..=3; the plan draws each fault's slot
    // ordinal below 2, and every attempt dispatches 8 jobs (ordinals
    // 0..8), so every scheduled fault actually fires.
    let plan = FaultPlan::seeded(seed, 1..4, 2);
    assert_eq!(plan.remaining(), 3, "one fault per tenant");
    let service = service_with_faults(&engine, 2, plan);
    let retry = RetryPolicy::new(3, Duration::from_millis(1));
    let seeds = [1000u64, 2000, 3000];
    let solos: Vec<_> = seeds
        .iter()
        .map(|&s| solo_patterns(&engine, 8, s))
        .collect();
    let handles: Vec<_> = seeds
        .iter()
        .map(|&s| {
            service
                .submit(JobSpec::raw(request(&engine, 8, s)).with_retry(retry))
                .expect("admitted")
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait();
        assert!(
            outcome.is_completed(),
            "seed {seed}: tenant {i} outcome: {outcome}"
        );
        let report = outcome.into_report().expect("completed carries a report");
        assert!(
            report.attempts <= 2,
            "seed {seed}: one fault needs at most one retry, took {}",
            report.attempts
        );
        assert_eq!(
            report.library.patterns(),
            &solos[i][..],
            "seed {seed}: tenant {i} library diverged"
        );
    }
    // Whatever the plan injected, the pool is intact afterwards.
    let post = service
        .submit(JobSpec::raw(request(&engine, 4, 9000)))
        .expect("post-chaos submit succeeds");
    assert!(post.wait().is_completed());
    let sched = service.scheduler_stats();
    assert_eq!(
        sched.workers_lost, 0,
        "micro-batch faults never kill a loop"
    );
}

/// A hard deadline that has already passed resolves the job to
/// `TimedOut` (empty partial) before any sampling happens — and a
/// generous hard deadline on the same service completes normally.
#[test]
fn expired_hard_deadline_resolves_to_timed_out() {
    let engine = tiny_engine(5);
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = service
        .submit(JobSpec::raw(request(&engine, 6, 11)).with_hard_deadline(Duration::ZERO))
        .expect("deadlines do not affect admission");
    match handle.wait() {
        JobOutcome::TimedOut { partial } => {
            assert_eq!(partial.generated, 0, "nothing beat a zero deadline");
            assert_eq!(partial.attempts, 1, "timeouts never retry");
        }
        other => panic!("expected TimedOut, got: {other}"),
    }
    spin_until("timed_out counter", || {
        service.scheduler_stats().timed_out.total() == 1
    });
    assert_eq!(service.stats().retries, 0);
    // A generous hard deadline is indistinguishable from none.
    let handle = service
        .submit(JobSpec::raw(request(&engine, 4, 12)).with_hard_deadline(Duration::from_secs(600)))
        .expect("admitted");
    assert!(handle.wait().is_completed());
}

/// A mid-run hard deadline keeps the slots that beat the clock: an
/// injected stall at slot ordinal 0 makes the first refill slow
/// enough that the rest of the submission expires behind it, and the
/// job resolves to `TimedOut` carrying exactly that refill's samples.
#[test]
fn hard_deadline_mid_run_keeps_partial_results() {
    let engine = tiny_engine(6);
    let plan = FaultPlan::new().inject(
        1,
        Fault::StallFor {
            batch: 0,
            duration: Duration::from_millis(300),
        },
    );
    let service = service_with_faults(&engine, 1, plan);
    // 12 jobs at tiny's batch_size 4: the table auto-sizes to 6 slots
    // and the cold-start de-aligner caps the first refill at half of
    // that, so slots 0..3 are admitted immediately (beating the 80 ms
    // deadline), stall 300 ms, and deliver; jobs 3..12 are still
    // queued when the worker next refills, now past the deadline —
    // purged.
    let handle = service
        .submit(
            JobSpec::raw(request(&engine, 12, 13)).with_hard_deadline(Duration::from_millis(80)),
        )
        .expect("admitted");
    match handle.wait() {
        JobOutcome::TimedOut { partial } => {
            assert_eq!(
                partial.generated, 3,
                "exactly the stalled-but-dispatched first refill must survive"
            );
        }
        other => panic!("expected TimedOut, got: {other}"),
    }
    assert_eq!(service.scheduler_stats().timed_out.total(), 1);
}

/// A panic that escapes the per-micro-batch isolation (here: a policy
/// that panics inside the dispatch lock) kills the worker loop — and
/// the supervisor respawns it, recovers the poisoned mutex, and the
/// submission still completes bit-identically. `workers_lost` counts
/// the respawn.
#[test]
fn supervisor_respawns_a_worker_loop_killed_by_a_policy_panic() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Panics on the first pick only (the flag flips *before* the
    /// panic, so the respawned loop proceeds normally).
    struct PanicOnce(Arc<AtomicBool>);
    impl SchedPolicy for PanicOnce {
        fn name(&self) -> &str {
            "panic-once"
        }
        fn pick(&mut self, _queue: &[patternpaint::core::SchedView]) -> usize {
            if !self.0.swap(true, Ordering::SeqCst) {
                panic!("policy panicked inside the dispatch lock");
            }
            0
        }
    }

    let engine = tiny_engine(7);
    let solo = solo_patterns(&engine, 8, 21);
    let fired = Arc::new(AtomicBool::new(false));
    let scheduler = engine.scheduler_with(
        1,
        SchedulerOptions::new().policy(PanicOnce(Arc::clone(&fired))),
    );
    let mut session = engine.session_seeded(21).attach(&scheduler);
    let counts = session
        .run_request(&request(&engine, 8, 21))
        .expect("the respawned loop finishes the round");
    assert_eq!(counts.0, 8, "every sample was generated");
    assert_eq!(
        session.library().patterns(),
        &solo[..],
        "library diverged across the respawn"
    );
    assert!(fired.load(Ordering::SeqCst), "the policy panic fired");
    // The loss is counted, and the poisoned state mutex was recovered:
    // stats and a fresh submission both work.
    let stats = scheduler.stats();
    assert_eq!(stats.workers_lost, 1, "one loop lost, one respawn");
    assert_eq!(stats.worker_panics, 0, "no micro-batch panic involved");
    let mut again = engine.session_seeded(22).attach(&scheduler);
    let counts = again
        .run_request(&request(&engine, 4, 22))
        .expect("post-respawn submission runs");
    assert_eq!(counts.0, 4);
}

/// Fault plans key on `(session, slot ordinal)` and each fault
/// fires once: the *same* session's second submission (a service
/// retry) only re-faults if the plan schedules it again.
#[test]
fn faults_fire_once_per_scheduled_occurrence() {
    let engine = tiny_engine(8);
    let plan = FaultPlan::new().inject(1, Fault::ErrAt { batch: 0 });
    let service = service_with_faults(&engine, 1, plan);
    let handle = service
        .submit(
            JobSpec::raw(request(&engine, 4, 31))
                .with_retry(RetryPolicy::new(2, Duration::from_millis(1))),
        )
        .expect("admitted");
    let report = handle
        .wait()
        .into_report()
        .expect("retry absorbs the fault");
    assert_eq!(report.attempts, 2);
    assert_eq!(report.generated, 4);
    assert_eq!(service.stats().retries, 1);
}
