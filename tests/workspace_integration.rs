//! Cross-crate integration tests: the contracts the pipeline relies on
//! when the crates are composed, exercised end to end on small configs.

use patternpaint::core::{PatternLibrary, PatternPaint, PipelineConfig};
use patternpaint::drc::{check_layout, RuleId};
use patternpaint::geometry::{GrayImage, Layout, Rect, Signature, SquishPattern};
use patternpaint::inpaint::{Denoiser, MaskSet, TemplateDenoiser};
use patternpaint::metrics::LibraryStats;
use patternpaint::pdk::{RuleBasedGenerator, SynthNode};
use patternpaint::selection::PcaSelector;
use patternpaint::solver::{random_topology, LegalizeSolver, SolverSetting};

/// The starter set satisfies every property Table I's first row needs:
/// 20 patterns, all DR-clean, all unique, H2 = log2(20).
#[test]
fn starter_row_contract() {
    let node = SynthNode::default();
    let starters = node.starter_patterns();
    assert_eq!(starters.len(), 20);
    for s in &starters {
        assert!(check_layout(s, node.rules()).is_clean());
    }
    let stats = LibraryStats::from_layouts(&starters);
    assert_eq!(stats.unique, 20);
    assert!((stats.h2 - 20f64.log2()).abs() < 1e-9);
    assert!(stats.h1 < stats.h2);
}

/// Rule-based generation → squish → reconstruction → DRC is a closed
/// loop: geometry survives every representation change.
#[test]
fn squish_roundtrip_preserves_legality() {
    let node = SynthNode::default();
    let mut generator = RuleBasedGenerator::new(node.clone(), 99);
    for layout in generator.generate_batch(20) {
        let squish = SquishPattern::from_layout(&layout);
        let back = squish.to_layout();
        assert_eq!(back, layout);
        assert!(check_layout(&back, node.rules()).is_clean());
    }
}

/// Template denoising of a *clean* generated layout image is exactly
/// idempotent, so the denoiser never corrupts good samples.
#[test]
fn denoiser_is_idempotent_on_clean_samples() {
    let node = SynthNode::default();
    let denoiser = TemplateDenoiser::new(2);
    for (i, starter) in node.starter_patterns().iter().enumerate().take(8) {
        let img = GrayImage::from_layout(starter);
        let once = denoiser.denoise(&img, starter);
        assert_eq!(&once, starter, "starter {i} changed by denoising");
    }
}

/// The end-to-end tiny pipeline produces only DR-clean unique patterns,
/// and iteration statistics are monotone where the paper says they are.
#[test]
fn pipeline_end_to_end_tiny() {
    let node = SynthNode::small();
    let mut pp = PatternPaint::pretrained(node.clone(), PipelineConfig::tiny(), 3)
        .expect("tiny config is valid");
    pp.finetune().expect("starters are well-formed");
    let round = pp.initial_generation().expect("round runs");
    assert_eq!(round.generated, 20 * 10);
    for p in round.library.patterns() {
        assert!(check_layout(p, node.rules()).is_clean());
    }
    let mut library = round.library.clone();
    library.extend(pp.starters().iter().cloned());
    let stats = pp
        .iterative_generation(&mut library, 2, round.legal)
        .expect("iterations run");
    assert!(stats[1].unique_total >= stats[0].unique_total);
    assert!(stats[1].legal_total >= stats[0].legal_total);
    // Every iteration's H2 is consistent with its own library size bound.
    for s in &stats {
        assert!(s.h2 <= (s.unique_total.max(1) as f64).log2() + 1e-9);
    }
}

/// PCA selection always returns distinct valid indices into the library.
#[test]
fn selection_indices_are_valid() {
    let node = SynthNode::default();
    let library: PatternLibrary = node.starter_patterns().into_iter().collect();
    let picks = PcaSelector::new(0.9, 0.4, 1).select(library.patterns(), 7);
    assert_eq!(picks.len(), 7);
    let mut sorted = picks.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 7);
    assert!(picks.iter().all(|&i| i < library.len()));
}

/// A solver success under a setting implies sign-off cleanliness under
/// that setting's deck — the contract the baselines rely on.
#[test]
fn solver_success_is_checker_clean() {
    for setting in SolverSetting::ALL {
        let solver = LegalizeSolver::new(setting);
        let deck = setting.check_deck();
        let mut successes = 0;
        for seed in 0..10 {
            let topo = random_topology(12, seed);
            let out = solver.solve(&topo, seed);
            if let Some(p) = out.pattern {
                assert!(out.success);
                assert!(check_layout(&p.to_layout(), &deck).is_clean());
                successes += 1;
            }
        }
        assert!(successes > 0, "{setting}: no successes on small instances");
    }
}

/// Inpainting masks and DRC agree about coordinates: regenerating a
/// masked corner cannot introduce violations outside that corner when
/// the raw output is the template itself.
#[test]
fn mask_region_localises_changes() {
    let node = SynthNode::default();
    let starter = &node.starter_patterns()[0];
    for mask in MaskSet::Default.masks(node.clip()) {
        let mut img = GrayImage::from_layout(starter);
        // Scribble inside the mask only.
        let r = mask.region();
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                img.set(x, y, -1.0);
            }
        }
        let out = TemplateDenoiser::new(2).denoise(&img, starter);
        // Outside the mask, the pattern must match the starter.
        let outside_changed = (0..node.clip()).any(|y| {
            (0..node.clip())
                .any(|x| !mask.region().contains(x, y) && out.get(x, y) != starter.get(x, y))
        });
        assert!(
            !outside_changed,
            "changes leaked outside {:?}",
            mask.region()
        );
    }
}

/// Signatures discriminate the pattern library at every level used by
/// the metrics: raster, full squish, Δ-classes.
#[test]
fn signature_levels_are_consistent() {
    let mut a = Layout::new(32, 32);
    a.fill_rect(Rect::new(4, 4, 3, 20));
    let mut b = a.clone();
    b.fill_rect(Rect::new(12, 4, 3, 20));
    assert_ne!(Signature::of_layout(&a), Signature::of_layout(&b));
    let (sa, sb) = (
        SquishPattern::from_layout(&a),
        SquishPattern::from_layout(&b),
    );
    assert_ne!(Signature::of_squish(&sa), Signature::of_squish(&sb));
    assert_ne!(Signature::of_deltas(&sa), Signature::of_deltas(&sb));
}

/// Violations carry physically meaningful locations: the reported rect
/// always lies inside the clip.
#[test]
fn violation_locations_are_in_bounds() {
    let node = SynthNode::default();
    let mut bad = Layout::new(32, 32);
    bad.fill_rect(Rect::new(4, 4, 2, 20));
    bad.fill_rect(Rect::new(8, 4, 4, 20));
    let report = check_layout(&bad, node.rules());
    assert!(!report.is_clean());
    for v in report.violations() {
        assert!(v.location.right() <= 32 && v.location.bottom() <= 32);
    }
    assert!(report.count(RuleId::MinWidth) >= 1);
}
