//! The streaming redesign must not change a single bit of output: the
//! round-level entry points, now reimplemented as consumers of
//! `generate_stream`, are replayed here against a hand-rolled copy of
//! the pre-redesign blocking path (direct batch sampling + sequential
//! validate loop) at fixed seeds.

use patternpaint::core::{PatternLibrary, PatternPaint, PipelineConfig};
use patternpaint::diffusion::DiffusionModel;
use patternpaint::drc::check_layout;
use patternpaint::geometry::{GrayImage, Layout};
use patternpaint::inpaint::{Denoiser, Mask, MaskSchedule, MaskSet, TemplateDenoiser};
use patternpaint::pdk::SynthNode;
use patternpaint::selection::PcaSelector;

fn tiny_pipeline() -> PatternPaint {
    PatternPaint::pretrained(SynthNode::small(), PipelineConfig::tiny(), 7)
        .expect("tiny config is valid")
}

/// The pre-redesign sampling call: one flat batch through the model.
fn legacy_sample(
    model: &DiffusionModel,
    cfg: &PipelineConfig,
    jobs: &[(Layout, Mask)],
    seed: u64,
) -> Vec<GrayImage> {
    let batch: Vec<(GrayImage, GrayImage)> = jobs
        .iter()
        .map(|(l, m)| (GrayImage::from_layout(l), m.as_image().clone()))
        .collect();
    model
        .sample_inpaint_batch_sized(&batch, seed, cfg.threads, cfg.batch_size)
        .expect("jobs are well-formed")
}

/// The pre-redesign validate loop: denoise, skip empties, DRC, insert.
fn legacy_validate(
    pp: &PatternPaint,
    jobs: &[(Layout, Mask)],
    raws: &[GrayImage],
    library: &mut PatternLibrary,
) -> (usize, usize) {
    let denoiser = TemplateDenoiser::new(pp.config().denoise_threshold);
    let mut legal = 0;
    for ((template, _), raw) in jobs.iter().zip(raws) {
        let denoised = denoiser.denoise(raw, template);
        if denoised.metal_area() == 0 {
            continue;
        }
        if check_layout(&denoised, pp.node().rules()).is_clean() {
            legal += 1;
            library.insert(denoised);
        }
    }
    (raws.len(), legal)
}

/// The pre-redesign initial round: starters × all ten masks × v.
fn legacy_initial(pp: &PatternPaint) -> (usize, usize, PatternLibrary) {
    let side = pp.node().clip();
    let mut jobs = Vec::new();
    for starter in pp.starters() {
        for set in MaskSet::ALL {
            for mask in set.masks(side) {
                for _ in 0..pp.config().variations {
                    jobs.push((starter.clone(), mask.clone()));
                }
            }
        }
    }
    let raws = legacy_sample(pp.model(), pp.config(), &jobs, pp.seed() ^ 0x1217);
    let mut library = PatternLibrary::new();
    let (generated, legal) = legacy_validate(pp, &jobs, &raws, &mut library);
    (generated, legal, library)
}

/// The pre-redesign iterative rounds, byte for byte: PCA selection,
/// alternating staggered mask schedules, per-pick fan-out.
fn legacy_iterative(
    pp: &PatternPaint,
    library: &mut PatternLibrary,
    iterations: usize,
    mut legal_so_far: usize,
) -> Vec<(usize, usize, usize)> {
    let cfg = pp.config();
    let side = pp.node().clip();
    let schedules = [
        MaskSchedule::new(MaskSet::Default, side),
        MaskSchedule::new(MaskSet::Horizontal, side),
    ];
    let selector = PcaSelector::new(cfg.pca_explained, cfg.max_density, pp.seed() ^ 0x5e1e);
    let mut out = Vec::new();
    for it in 0..iterations {
        let k = cfg.select_k.min(library.len().max(1));
        let picks = selector.select(library.patterns(), k);
        let per_seed = (cfg.samples_per_iteration / picks.len().max(1)).max(1);
        let mut jobs = Vec::new();
        for (pi, &idx) in picks.iter().enumerate() {
            let template = library.patterns()[idx].clone();
            let schedule = &schedules[pi % 2];
            let mask = schedule.mask_for(it, pi).clone();
            for _ in 0..per_seed {
                jobs.push((template.clone(), mask.clone()));
            }
        }
        let raws = legacy_sample(pp.model(), cfg, &jobs, pp.seed() ^ (0xabcd + it as u64));
        let (generated, legal) = legacy_validate(pp, &jobs, &raws, library);
        legal_so_far += legal;
        out.push((generated, legal_so_far, library.len()));
    }
    out
}

#[test]
fn initial_generation_is_bit_identical_to_legacy_path() {
    let pp = tiny_pipeline();
    let (legacy_generated, legacy_legal, legacy_library) = legacy_initial(&pp);
    let round = pp.initial_generation().expect("round runs");
    assert_eq!(round.generated, legacy_generated);
    assert_eq!(round.legal, legacy_legal);
    assert_eq!(
        round.library.patterns(),
        legacy_library.patterns(),
        "stream-backed round must reproduce the legacy library exactly"
    );
    let (a, b) = (round.library.stats(), legacy_library.stats());
    assert_eq!(a.unique, b.unique);
    // H1/H2 sum entropy terms in hash-map iteration order, which is
    // randomized per map instance, so identical libraries can differ by
    // float-summation ulps; the libraries themselves are bit-exact.
    assert!((a.h1 - b.h1).abs() < 1e-12, "h1 {} vs {}", a.h1, b.h1);
    assert!((a.h2 - b.h2).abs() < 1e-12, "h2 {} vs {}", a.h2, b.h2);
}

#[test]
fn iterative_generation_is_bit_identical_to_legacy_path() {
    let pp = tiny_pipeline();
    let round = pp.initial_generation().expect("round runs");

    let mut legacy_library = round.library.clone();
    legacy_library.extend(pp.starters().iter().cloned());
    let mut library = legacy_library.clone();

    let legacy = legacy_iterative(&pp, &mut legacy_library, 2, round.legal);
    let stats = pp
        .iterative_generation(&mut library, 2, round.legal)
        .expect("iterations run");

    assert_eq!(stats.len(), legacy.len());
    for (st, (generated, legal_total, unique_total)) in stats.iter().zip(&legacy) {
        assert_eq!(st.generated, *generated);
        assert_eq!(st.legal_total, *legal_total);
        assert_eq!(st.unique_total, *unique_total);
    }
    assert_eq!(
        library.patterns(),
        legacy_library.patterns(),
        "stream-backed iterations must reproduce the legacy library exactly"
    );
}
