//! Continuous batching, asserted end to end through the public API:
//!
//! * **Bit-identity** — merged slot tables change *which* forward pass
//!   a job rides in, never its arithmetic: scheduled sessions equal
//!   solo sessions (library contents, insertion order, counts) across
//!   thread counts, slot capacities and both dispatch modes.
//! * **Merging actually happens** — under multi-tenant load the slot
//!   counters prove forward passes mixed submissions
//!   (`batches_merged > 0`) that fixed dispatch would have run
//!   separately.
//! * **No starvation** — an Interactive tenant submitted into a
//!   saturating BestEffort flood still completes promptly under
//!   `WeightedFair` (the flood is provably unfinished when it does).
//! * **Straggler accounting** — every retirement path (completed,
//!   abandoned, timed-out) records a terminal timestamp, so
//!   `turnaround_micros` moves even when no submission completes.

use patternpaint::core::{
    CancelToken, DispatchMode, Engine, GenerationRequest, JobOutcome, JobSet, JobSpec,
    PipelineConfig, QosClass, Scheduler, SchedulerOptions, Service, ServiceOptions, Session,
    StreamOptions, WeightedFair,
};
use patternpaint::pdk::SynthNode;
use pp_inpaint::MaskSet;
use std::time::Duration;

fn tiny_engine(seed: u64) -> Engine {
    Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(seed)
        .untrained_engine()
        .expect("tiny config is valid")
}

/// An explicit request of `n` jobs cycling the engine's starters and
/// masks, seeded per tenant.
fn request(engine: &Engine, n: usize, seed: u64) -> GenerationRequest {
    let masks = MaskSet::Default.masks(engine.node().clip());
    GenerationRequest::new(JobSet::cycle(engine.starters(), &masks, n), seed)
}

/// One tenant's shape: job count, micro-batch size, class, seed.
struct Tenant {
    jobs: usize,
    batch: usize,
    class: QosClass,
    seed: u64,
}

/// Deliberately unequal: different job counts *and* micro-batch
/// widths, so slot admission must align heterogeneous groups.
fn unequal_tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            jobs: 24,
            batch: 2,
            class: QosClass::Interactive,
            seed: 61,
        },
        Tenant {
            jobs: 6,
            batch: 1,
            class: QosClass::Batch,
            seed: 62,
        },
        Tenant {
            jobs: 15,
            batch: 4,
            class: QosClass::BestEffort,
            seed: 63,
        },
    ]
}

/// Runs every tenant concurrently on one scheduler and asserts each
/// library equals its solo (unscheduled) reference — which covers
/// per-session in-order delivery, completeness and bit-identical
/// contents in one comparison.
fn assert_tenants_match_solo(engine: &Engine, scheduler: &Scheduler, tenants: &[Tenant]) {
    let mut solos = Vec::new();
    for t in tenants {
        let mut cfg = *engine.config();
        cfg.batch_size = t.batch;
        let mut solo = engine
            .session_seeded(t.seed)
            .with_config(cfg)
            .expect("config fits the engine");
        let counts = solo
            .run_request(&request(engine, t.jobs, t.seed))
            .expect("solo round runs");
        solos.push((counts, solo.into_library()));
    }
    let mut sessions: Vec<Session> = tenants
        .iter()
        .map(|t| {
            let mut cfg = *engine.config();
            cfg.batch_size = t.batch;
            engine
                .session_seeded(t.seed)
                .with_config(cfg)
                .expect("config fits the engine")
                .with_options(StreamOptions::default().with_class(t.class))
                .attach(scheduler)
        })
        .collect();
    let counts: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .zip(tenants)
            .map(|(sess, t)| {
                let req = request(engine, t.jobs, t.seed);
                s.spawn(move || sess.run_request(&req).expect("scheduled round runs"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });
    for (i, (sess, (solo_counts, solo_lib))) in sessions.iter().zip(&solos).enumerate() {
        assert_eq!(&counts[i], solo_counts, "tenant {i} counts diverged");
        assert_eq!(
            sess.library().patterns(),
            solo_lib.patterns(),
            "tenant {i} library diverged (contents or insertion order)"
        );
    }
}

/// The core continuous-batching guarantee: merging submissions into
/// one slot table may change scheduling, never samples. Swept across
/// worker counts and slot capacities (auto, cramped, generous) —
/// every combination must reproduce the solo libraries bit for bit.
#[test]
fn merged_batches_are_bit_identical_to_solo_across_threads_and_slot_caps() {
    for threads in [1usize, 2] {
        for slots in [0usize, 3, 8] {
            let engine = tiny_engine(10);
            let scheduler = engine.scheduler_with(
                threads,
                SchedulerOptions::new()
                    .dispatch(DispatchMode::Continuous)
                    .slot_capacity(slots),
            );
            assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
            let stats = scheduler.stats();
            assert_eq!(
                stats.completed.total(),
                3,
                "threads={threads} slots={slots}: every submission completed"
            );
            assert_eq!(stats.samples, 24 + 6 + 15);
            assert!(
                stats.slots_filled > 0,
                "threads={threads} slots={slots}: slot occupancy was counted"
            );
        }
    }
}

/// The `FixedBatch` escape hatch is a faithful baseline: same results,
/// and by construction it never mixes submissions in one pass.
#[test]
fn fixed_batch_mode_matches_solo_and_never_merges() {
    let engine = tiny_engine(11);
    let scheduler = engine.scheduler_with(
        2,
        SchedulerOptions::new().dispatch(DispatchMode::FixedBatch),
    );
    assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
    let stats = scheduler.stats();
    assert_eq!(stats.completed.total(), 3);
    assert_eq!(
        stats.batches_merged, 0,
        "fixed dispatch must never mix submissions in one forward pass"
    );
}

/// Under concurrent multi-tenant load on one worker, continuous
/// batching must actually merge: some forward passes carry slots from
/// more than one submission — the passes fixed dispatch would have
/// run separately (and narrower).
#[test]
fn continuous_batching_merges_concurrent_submissions() {
    let engine = tiny_engine(12);
    // One worker forces every tenant through the same slot table; small
    // micro-batches leave free slots for co-tenants at every refill.
    let scheduler = engine.scheduler_with(1, SchedulerOptions::new());
    assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
    let stats = scheduler.stats();
    assert_eq!(stats.completed.total(), 3);
    assert!(
        stats.batches_merged > 0,
        "no forward pass ever mixed submissions: {stats:?}"
    );
    assert!(
        stats.slots_filled > 0 && stats.slots_idle < stats.slots_filled * 10,
        "slot occupancy counters look implausible: {stats:?}"
    );
}

/// A saturating BestEffort flood must not starve an Interactive
/// tenant: under `WeightedFair` the interactive submission finishes
/// while the flood is still provably in the queue.
#[test]
fn best_effort_flood_does_not_starve_interactive() {
    let engine = tiny_engine(13);
    let scheduler = engine.scheduler_with(
        1,
        SchedulerOptions::new()
            .policy(WeightedFair)
            .dispatch(DispatchMode::Continuous),
    );
    let flood_jobs = 48usize;
    let mut flood: Vec<Session> = (0..3)
        .map(|i| {
            engine
                .session_seeded(70 + i)
                .with_class(QosClass::BestEffort)
                .attach(&scheduler)
        })
        .collect();
    let mut interactive = engine
        .session_seeded(80)
        .with_class(QosClass::Interactive)
        .attach(&scheduler);
    let flood_done_when_interactive_finished = std::thread::scope(|s| {
        let handles: Vec<_> = flood
            .iter_mut()
            .enumerate()
            .map(|(i, sess)| {
                let req = request(&engine, flood_jobs, 70 + i as u64);
                s.spawn(move || sess.run_request(&req).expect("flood round runs"))
            })
            .collect();
        // Give the flood a head start so the worker is saturated when
        // the interactive tenant arrives.
        while scheduler.stats().samples == 0 {
            std::thread::yield_now();
        }
        let counts = interactive
            .run_request(&request(&engine, 8, 80))
            .expect("interactive round runs");
        assert_eq!(counts.0, 8, "interactive must fully complete");
        let best_effort_done = scheduler.stats().completed.get(QosClass::BestEffort);
        for h in handles {
            h.join().expect("flood thread");
        }
        best_effort_done
    });
    assert!(
        flood_done_when_interactive_finished < 3,
        "the flood finished before the interactive tenant — 8 jobs \
         outwaited {} best-effort jobs, which is starvation",
        3 * flood_jobs
    );
    let stats = scheduler.stats();
    assert_eq!(stats.completed.total(), 4, "nobody starves: all complete");
}

/// The admission de-aligner: a *cold* continuous refill (empty slot
/// table) caps its width at half the table, so a lone tenant whose
/// batch exactly matches the capacity cannot march every slot in
/// lockstep. The staggered start shows up in the occupancy counters —
/// early steps run a part-filled table (idle slots counted) and the
/// 12 jobs spread over more micro-batches than the 3 full-width
/// refills an aligned start would dispatch.
#[test]
fn cold_refill_dealigner_staggers_slot_occupancy() {
    let engine = tiny_engine(15);
    let scheduler = engine.scheduler_with(
        1,
        SchedulerOptions::new()
            .dispatch(DispatchMode::Continuous)
            // Capacity == batch width: the worst lockstep case.
            .slot_capacity(4),
    );
    let mut session = engine.session_seeded(95).attach(&scheduler);
    let counts = session
        .run_request(&request(&engine, 12, 95))
        .expect("round runs");
    assert_eq!(counts.0, 12);
    let stats = scheduler.stats();
    assert_eq!(stats.samples, 12);
    assert_eq!(stats.completed.total(), 1);
    assert_eq!(stats.batches_merged, 0, "single tenant: nothing to merge");
    assert!(
        stats.micro_batches >= 4,
        "the capped cold refill must split 12 jobs into more than the \
         3 aligned full-width refills: {stats:?}"
    );
    assert!(
        stats.slots_idle >= 1 && stats.slots_idle < stats.slots_filled,
        "a staggered table steps part-filled early on, without idling \
         more than it works: {stats:?}"
    );
}

/// Straggler-accounting regression: a submission abandoned mid-stream
/// (cancelled after its first delivery) must still record a terminal
/// timestamp. Before the fix only *completed* submissions fed
/// `turnaround_micros`, so abandoned stragglers silently vanished
/// from the latency ledger.
#[test]
fn abandoned_submissions_record_turnaround() {
    let engine = tiny_engine(14);
    let scheduler = engine.scheduler(1);
    let cancel = CancelToken::new();
    let hook_cancel = cancel.clone();
    let mut session = engine
        .session_seeded(90)
        .with_options(
            StreamOptions::default()
                .with_cancel(cancel)
                // Cancel as soon as the first micro-batch lands.
                .with_progress(move |_| hook_cancel.cancel()),
        )
        .attach(&scheduler);
    let counts = session
        .run_request(&request(&engine, 64, 90))
        .expect("cancellation is not an error");
    assert!(
        counts.0 >= 1 && counts.0 < 64,
        "cancellation failed to stop the round early ({}/64)",
        counts.0
    );
    // The purge runs on the worker's next refill; poll until it lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while scheduler.stats().abandoned.total() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandonment never booked: {:?}",
            scheduler.stats()
        );
        std::thread::yield_now();
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed.total(), 0, "nothing completed");
    assert!(
        stats.turnaround_micros > 0,
        "abandoned submission left no terminal timestamp: {stats:?}"
    );
}

/// Same regression for the timed-out path: a hard deadline that
/// expires before dispatch retires the submission as `timed_out` —
/// and that retirement, too, must stamp `turnaround_micros`.
#[test]
fn timed_out_submissions_record_turnaround() {
    let engine = tiny_engine(15);
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = service
        .submit(JobSpec::raw(request(&engine, 6, 91)).with_hard_deadline(Duration::ZERO))
        .expect("admission precedes deadline enforcement");
    match handle.wait() {
        JobOutcome::TimedOut { partial } => {
            assert_eq!(partial.generated, 0, "nothing beat a zero deadline")
        }
        other => panic!("expected TimedOut, got: {other}"),
    }
    // The timed-out retirement is booked by the worker's purge; poll
    // until the counter lands before inspecting the turnaround ledger.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.scheduler_stats().timed_out.total() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "timeout never booked: {:?}",
            service.scheduler_stats()
        );
        std::thread::yield_now();
    }
    let stats = service.scheduler_stats();
    assert_eq!(stats.completed.total(), 0);
    assert!(
        stats.turnaround_micros > 0,
        "timed-out submission left no terminal timestamp: {stats:?}"
    );
}
