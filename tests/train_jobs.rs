//! Training as a job: the ISSUE-10 contract end to end.
//!
//! * **Resume** — a run split across submissions (or killed mid-epoch
//!   by an injected fault and retried) produces a final checkpoint
//!   *bit-identical* to an uninterrupted run of the same spec.
//! * **Preemption** — a best-effort Train job parks between epochs
//!   while an interactive tenant's sampling is in flight, and both
//!   finish.
//! * **EMA** — shadow-weight export diverges from live-weight export;
//!   both serve.
//! * **Lineage** — the fine-tuned checkpoint records its parent
//!   engine's checkpoint checksum; the child opens as an engine and
//!   A/Bs against its parent through the fleet.
//!
//! The `smoke_`-prefixed test is the `./ci.sh --train-smoke` gate.

use patternpaint::core::{
    ArtifactStore, Engine, Fault, FaultPlan, Fleet, FleetOptions, JobOutcome, JobSpec, MemStore,
    PipelineConfig, PpError, QosClass, RetryPolicy, SchedulerOptions, Service, ServiceOptions,
    TrainSpec, TrainSummary, ENGINE_MODEL_KEY,
};
use patternpaint::pdk::SynthNode;
use pp_diffusion::{checkpoint_checksum, load_checkpoint_with};
use std::sync::Arc;
use std::time::Duration;

fn tiny_engine(seed: u64) -> Engine {
    Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(seed)
        .untrained_engine()
        .expect("tiny config is valid")
}

fn train_service(engine: &Engine, store: &Arc<MemStore>) -> Service {
    Service::new(
        engine,
        ServiceOptions {
            threads: 2,
            store: Some(Arc::clone(store) as Arc<dyn ArtifactStore>),
            ..Default::default()
        },
    )
}

fn tiny_spec(output: &str) -> TrainSpec {
    TrainSpec::new(output)
        .with_epochs(4)
        .with_steps_per_epoch(3)
        .with_batch(2)
        .with_prior(1, 0.5)
}

/// Runs `spec` to completion on a fresh service over `engine` backed by
/// `store`, returning the summary.
fn run_to_completion(engine: &Engine, store: &Arc<MemStore>, spec: TrainSpec) -> TrainSummary {
    let service = train_service(engine, store);
    let outcome = service
        .submit(JobSpec::train(spec))
        .expect("train job admitted")
        .wait();
    assert!(outcome.is_completed(), "outcome was: {outcome}");
    outcome
        .into_report()
        .expect("completed carries a report")
        .train
        .expect("train jobs report a summary")
}

/// The `./ci.sh --train-smoke` gate: a 2-epoch fine-tune through the
/// service records its parent lineage, resumes instead of restarting,
/// and the trained checkpoint opens as an engine that serves generation
/// through a fresh service unchanged.
#[test]
fn smoke_train_job_records_lineage_and_resumes() {
    let engine = tiny_engine(3);
    let store = Arc::new(MemStore::new());
    engine.save(&*store).expect("engine saves");
    let parent_sum = checkpoint_checksum(&store.get(ENGINE_MODEL_KEY).unwrap())
        .expect("engine checkpoint is addressable");

    let spec = tiny_spec("smoke").with_epochs(2);
    let summary = run_to_completion(&engine, &store, spec.clone());
    assert_eq!(summary.epochs_done, 2);
    assert_eq!(summary.resumed_from, 0, "first run starts fresh");
    assert_eq!(
        summary.parent,
        Some(parent_sum),
        "lineage must content-address the parent engine checkpoint"
    );

    // Resubmitting the same spec resumes from the stored state (here:
    // already done) rather than training from epoch 0 again.
    let again = run_to_completion(&engine, &store, spec.clone());
    assert_eq!(again.resumed_from, 2, "second run must resume, not restart");
    assert_eq!(again.epochs_done, 2);

    // The fine-tuned checkpoint serves generation through the existing
    // service stack unchanged.
    let (child, lineage) = engine
        .open_trained(&*store, &summary.checkpoint_key)
        .expect("trained checkpoint opens");
    assert!(child.is_finetuned());
    assert_eq!(lineage.parent, Some(parent_sum));
    assert_eq!(lineage.epoch, 2);
    let service = Service::new(
        &child,
        ServiceOptions {
            threads: 2,
            ..Default::default()
        },
    );
    let outcome = service
        .submit(JobSpec::initial().with_seed(7).with_budget(8))
        .expect("generation job admitted")
        .wait();
    assert!(outcome.is_completed(), "outcome was: {outcome}");
}

/// The tentpole resumability claim: 2 epochs + resume for 2 more is
/// bit-identical to 4 epochs in one run — weights, optimiser moments
/// and EMA shadow all survive the boundary.
#[test]
fn split_run_is_bit_identical_to_uninterrupted() {
    let engine = tiny_engine(5);

    let solo_store = Arc::new(MemStore::new());
    let solo = run_to_completion(&engine, &solo_store, tiny_spec("resume"));
    assert_eq!(solo.epochs_done, 4);

    let store = Arc::new(MemStore::new());
    let first = run_to_completion(&engine, &store, tiny_spec("resume").with_epochs(2));
    assert_eq!((first.epochs_done, first.resumed_from), (2, 0));
    let second = run_to_completion(&engine, &store, tiny_spec("resume"));
    assert_eq!(
        (second.epochs_done, second.resumed_from),
        (4, 2),
        "the second submission must pick up at epoch 2"
    );

    let (key, _) = (solo.checkpoint_key.clone(), ());
    assert_eq!(
        solo_store.get(&key).unwrap(),
        store.get(&key).unwrap(),
        "split run must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        solo_store.get(&solo.state_key).unwrap(),
        store.get(&second.state_key).unwrap(),
        "optimiser/EMA/RNG state must also match bit for bit"
    );
}

/// Chaos case: an injected worker panic kills attempt 1 after two
/// epochs were checkpointed. The retry resumes from epoch 2 — never
/// from epoch 0 — and the final weights match a never-faulted run.
#[test]
fn injected_panic_mid_training_resumes_from_last_checkpoint() {
    let engine = tiny_engine(9);

    let clean_store = Arc::new(MemStore::new());
    run_to_completion(&engine, &clean_store, tiny_spec("chaos"));

    let store = Arc::new(MemStore::new());
    // The train job is the service's first submission → scheduler
    // session 1; the fault fires at epoch ordinal 2.
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 2,
            scheduler: SchedulerOptions::new()
                .faults(FaultPlan::new().inject(1, Fault::PanicAt { batch: 2 })),
            store: Some(Arc::clone(&store) as Arc<dyn ArtifactStore>),
            ..Default::default()
        },
    );
    let outcome = service
        .submit(
            JobSpec::train(tiny_spec("chaos"))
                .with_retry(RetryPolicy::new(2, Duration::from_millis(1))),
        )
        .expect("admitted")
        .wait();
    assert!(outcome.is_completed(), "outcome was: {outcome}");
    let report = outcome.into_report().unwrap();
    assert_eq!(report.attempts, 2, "the panic must have cost one attempt");
    let summary = report.train.expect("train summary");
    assert_eq!(
        summary.resumed_from, 2,
        "the retry must resume from the last checkpoint, not epoch 0"
    );
    assert_eq!(summary.epochs_done, 4);
    assert_eq!(
        service.scheduler_stats().worker_panics,
        1,
        "the injected panic is accounted like a sampling-path panic"
    );
    assert_eq!(
        clean_store.get(&summary.checkpoint_key).unwrap(),
        store.get(&summary.checkpoint_key).unwrap(),
        "the faulted-and-resumed run must match the never-faulted run bit for bit"
    );
}

/// EMA export: same training trajectory, different exported weights.
/// Both checkpoints load and open as engines.
#[test]
fn ema_export_diverges_from_live_export() {
    use patternpaint::core::ExportWeights;
    let engine = tiny_engine(11);
    let store = Arc::new(MemStore::new());
    let live = run_to_completion(&engine, &store, tiny_spec("live").with_ema(Some(0.9)));
    let ema = run_to_completion(
        &engine,
        &store,
        tiny_spec("shadow")
            .with_ema(Some(0.9))
            .with_export(ExportWeights::Ema),
    );
    let live_bytes = store.get(&live.checkpoint_key).unwrap();
    let ema_bytes = store.get(&ema.checkpoint_key).unwrap();
    assert_ne!(
        live_bytes, ema_bytes,
        "EMA export must diverge from live export"
    );
    load_checkpoint_with(live_bytes.as_slice()).expect("live loads");
    load_checkpoint_with(ema_bytes.as_slice()).expect("ema loads");
    engine
        .open_trained(&*store, &live.checkpoint_key)
        .expect("live opens as an engine");
    engine
        .open_trained(&*store, &ema.checkpoint_key)
        .expect("ema opens as an engine");
}

/// Preemption: a best-effort Train job parks between epochs while an
/// interactive tenant's sampling is in flight. Both complete, and the
/// train summary counts at least one preemption episode.
#[test]
fn train_job_parks_for_an_interactive_tenant() {
    let engine = tiny_engine(13);
    let store = Arc::new(MemStore::new());
    let service = train_service(&engine, &store);

    // Keep the pool busy with interactive work first, so the train
    // job's first epoch boundary observes a higher class in flight.
    let interactive = service
        .submit(
            JobSpec::iterative(1)
                .with_class(QosClass::Interactive)
                .with_seed(21),
        )
        .expect("interactive admitted");
    let train = service
        .submit(JobSpec::train(
            tiny_spec("coexist").with_epochs(6).with_steps_per_epoch(2),
        ))
        .expect("train admitted");

    let interactive_outcome = interactive.wait();
    assert!(
        interactive_outcome.is_completed(),
        "interactive outcome was: {interactive_outcome}"
    );
    let outcome = train.wait();
    assert!(outcome.is_completed(), "train outcome was: {outcome}");
    let summary = outcome.into_report().unwrap().train.unwrap();
    assert_eq!(summary.epochs_done, 6);
    assert!(
        summary.preemptions >= 1,
        "the train job must have parked for the interactive tenant at least once \
         (preemptions = {})",
        summary.preemptions
    );
}

/// Fork + A/B: the fine-tuned child engine carries its parent's
/// checkpoint checksum in the lineage and serves generation next to
/// the parent through the existing fleet, bit-identically admitted.
#[test]
fn finetuned_child_abs_against_parent_through_fleet() {
    let engine = tiny_engine(17);
    let store = Arc::new(MemStore::new());
    engine.save(&*store).expect("engine saves");
    let parent_sum = checkpoint_checksum(&store.get(ENGINE_MODEL_KEY).unwrap()).unwrap();

    let summary = run_to_completion(&engine, &store, tiny_spec("fork").with_epochs(2));
    let (child, lineage) = engine
        .open_trained(&*store, &summary.checkpoint_key)
        .expect("child opens");
    assert_eq!(lineage.parent, Some(parent_sum), "fork records its parent");
    assert_eq!(lineage.epoch, 2);

    let fleet = Fleet::from_engines(
        vec![engine.clone(), child],
        FleetOptions::new().with_threads(2),
    )
    .expect("fleet builds");
    // Placement hints pin one probe per replica: parent vs child.
    for replica in 0..2u64 {
        let outcome = fleet
            .submit(
                JobSpec::initial()
                    .with_seed(23)
                    .with_budget(6)
                    .with_placement(replica),
            )
            .expect("probe admitted")
            .wait();
        assert!(
            outcome.is_completed(),
            "replica {replica} outcome was: {outcome}"
        );
    }

    // Fleets refuse training outright: replicas share one checkpoint.
    let err = fleet
        .submit(JobSpec::train(tiny_spec("nope")))
        .expect_err("fleet must reject train jobs");
    assert!(matches!(err, PpError::Config(_)), "was: {err}");
}

/// A hard deadline resolves a train job to `TimedOut`, and whatever
/// epochs beat the clock are checkpointed with matching lineage.
#[test]
fn hard_deadline_times_out_with_last_checkpoint() {
    let engine = tiny_engine(19);
    let store = Arc::new(MemStore::new());
    let service = train_service(&engine, &store);
    let outcome = service
        .submit(
            JobSpec::train(tiny_spec("deadline").with_epochs(10_000))
                .with_hard_deadline(Duration::from_millis(80)),
        )
        .expect("admitted")
        .wait();
    let JobOutcome::TimedOut { partial } = outcome else {
        panic!("expected TimedOut, got: {outcome}");
    };
    let summary = partial.train.expect("timeout still reports the summary");
    assert!(summary.epochs_done < 10_000);
    if summary.epochs_done > 0 {
        let bytes = store
            .get(&summary.checkpoint_key)
            .expect("checkpoint exists");
        let (_, lineage) = load_checkpoint_with(bytes.as_slice()).expect("loads");
        assert_eq!(
            lineage.epoch, summary.epochs_done,
            "the stored checkpoint is exactly the last completed epoch"
        );
    }
}

/// Train-specific admission errors are typed and synchronous: no
/// store, bad spec, config-shaping on a train job.
#[test]
fn train_submission_errors_are_typed() {
    let engine = tiny_engine(29);
    // No store configured → Config error, nothing admitted.
    let bare = Service::new(
        &engine,
        ServiceOptions {
            threads: 2,
            ..Default::default()
        },
    );
    let err = bare
        .submit(JobSpec::train(tiny_spec("x")))
        .expect_err("no store must reject");
    assert!(err.to_string().contains("store"), "was: {err}");

    let store = Arc::new(MemStore::new());
    let service = train_service(&engine, &store);
    let err = service
        .submit(JobSpec::train(tiny_spec("x").with_epochs(0)))
        .expect_err("invalid spec must reject");
    assert!(err.to_string().contains("epochs"), "was: {err}");
    let err = service
        .submit(JobSpec::train(tiny_spec("x")).with_config(PipelineConfig::tiny()))
        .expect_err("config shaping on a train job must reject");
    assert!(matches!(err, PpError::Config(_)), "was: {err}");
    assert_eq!(
        service.stats().submitted.total(),
        0,
        "rejected specs must never occupy admission slots"
    );
}

/// `JobHandle::progress` is epoch-granular for train jobs: after
/// completion it reads epochs-done / epochs-total.
#[test]
fn progress_reports_epochs_for_train_jobs() {
    let engine = tiny_engine(31);
    let store = Arc::new(MemStore::new());
    let service = train_service(&engine, &store);
    let handle = service
        .submit(JobSpec::train(tiny_spec("progress").with_epochs(3)))
        .expect("admitted");
    let progress = handle.progress();
    assert!(progress.total == 0 || progress.total == 3);
    let outcome = handle.wait();
    assert!(outcome.is_completed(), "outcome was: {outcome}");
    // The handle was consumed by wait(); the report's summary carries
    // the same terminal numbers progress converged to.
    let summary = outcome.into_report().unwrap().train.unwrap();
    assert_eq!((summary.epochs_done, summary.epochs_total), (3, 3));
}

/// A session library saved through the service's store becomes a
/// training dataset: `with_dataset` ingests the PPSQ archive.
#[test]
fn saved_session_library_feeds_training() {
    let engine = tiny_engine(37);
    let store = Arc::new(MemStore::new());
    let mut session = engine.session_seeded(41);
    session.seed_starters();
    session.save(&*store, "harvest").expect("session saves");

    let summary = run_to_completion(
        &engine,
        &store,
        tiny_spec("ingest").with_epochs(2).with_dataset("harvest"),
    );
    assert_eq!(summary.epochs_done, 2);

    // A dataset that does not exist fails the job (typed, not silent).
    let service = train_service(&engine, &store);
    let outcome = service
        .submit(JobSpec::train(
            tiny_spec("missing").with_dataset("no-such-session"),
        ))
        .expect("admitted — the dataset is read at run time")
        .wait();
    let JobOutcome::Failed(err) = outcome else {
        panic!("expected Failed, got: {outcome}");
    };
    assert!(matches!(err, PpError::Artifact(_)), "was: {err}");
}
