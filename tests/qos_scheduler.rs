//! The QoS redesign's guarantees, asserted end to end through the
//! public API:
//!
//! * **RoundRobin regression** — the default policy reproduces the
//!   pre-policy scheduler bit for bit: scheduled sessions equal solo
//!   sessions (library contents, insertion order, counts) under
//!   deliberately unequal job counts and micro-batch sizes.
//! * **Fairness without starvation** — the same workload completes
//!   identically under `WeightedFair` and `DeadlineFirst`; policies
//!   may only change interleaving, never results, and no session
//!   starves.
//! * **Cancellation frees the share** — cancelling a high-priority
//!   job mid-round retires it (scheduler stats show the abandonment)
//!   while the other sessions run to their exact solo results.
//! * **Error surface** — `PpError::Rejected` and `JobOutcome::Failed`
//!   display usefully and `source()` chains reach the root cause.

use patternpaint::core::{
    CancelToken, ClassCounts, DeadlineFirst, Engine, Fault, FaultPlan, GenerationRequest,
    JobOutcome, JobSet, JobSpec, PipelineConfig, PpError, QosClass, QueueLimits, RetryPolicy,
    SchedPolicy, Scheduler, SchedulerOptions, Service, ServiceOptions, Session, StreamOptions,
    WeightedFair,
};
use patternpaint::pdk::SynthNode;
use pp_inpaint::MaskSet;
use std::time::Duration;

fn tiny_engine(seed: u64) -> Engine {
    Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(seed)
        .untrained_engine()
        .expect("tiny config is valid")
}

/// An explicit request of `n` jobs cycling the engine's starters and
/// masks, seeded per tenant.
fn request(engine: &Engine, n: usize, seed: u64) -> GenerationRequest {
    let masks = MaskSet::Default.masks(engine.node().clip());
    GenerationRequest::new(JobSet::cycle(engine.starters(), &masks, n), seed)
}

/// One tenant's shape: job count, micro-batch size, class, seed.
struct Tenant {
    jobs: usize,
    batch: usize,
    class: QosClass,
    seed: u64,
    deadline: Option<Duration>,
}

/// Runs every tenant concurrently on one scheduler and asserts each
/// library equals its solo (unscheduled) reference — which covers
/// per-session in-order delivery, completeness (no starvation), and
/// bit-identical contents in one comparison.
fn assert_tenants_match_solo(engine: &Engine, scheduler: &Scheduler, tenants: &[Tenant]) {
    let mut solos = Vec::new();
    for t in tenants {
        let mut cfg = *engine.config();
        cfg.batch_size = t.batch;
        let mut solo = engine
            .session_seeded(t.seed)
            .with_config(cfg)
            .expect("config fits the engine");
        let counts = solo
            .run_request(&request(engine, t.jobs, t.seed))
            .expect("solo round runs");
        solos.push((counts, solo.into_library()));
    }
    let mut sessions: Vec<Session> = tenants
        .iter()
        .map(|t| {
            let mut cfg = *engine.config();
            cfg.batch_size = t.batch;
            let mut opts = StreamOptions::default().with_class(t.class);
            opts.deadline = t.deadline;
            engine
                .session_seeded(t.seed)
                .with_config(cfg)
                .expect("config fits the engine")
                .with_options(opts)
                .attach(scheduler)
        })
        .collect();
    let counts: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .zip(tenants)
            .map(|(sess, t)| {
                let req = request(engine, t.jobs, t.seed);
                s.spawn(move || sess.run_request(&req).expect("scheduled round runs"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });
    for (i, (sess, (solo_counts, solo_lib))) in sessions.iter().zip(&solos).enumerate() {
        assert_eq!(&counts[i], solo_counts, "tenant {i} counts diverged");
        assert_eq!(
            sess.library().patterns(),
            solo_lib.patterns(),
            "tenant {i} library diverged (contents or insertion order)"
        );
    }
}

fn unequal_tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            jobs: 24,
            batch: 2,
            class: QosClass::Interactive,
            seed: 41,
            deadline: None,
        },
        Tenant {
            jobs: 6,
            batch: 1,
            class: QosClass::Batch,
            seed: 42,
            deadline: None,
        },
        Tenant {
            jobs: 15,
            batch: 4,
            class: QosClass::BestEffort,
            seed: 43,
            deadline: None,
        },
    ]
}

#[test]
fn round_robin_reproduces_solo_results_under_unequal_load() {
    let engine = tiny_engine(1);
    let scheduler = engine.scheduler(3);
    assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
    let stats = scheduler.stats();
    assert_eq!(stats.policy, "round-robin");
    assert_eq!(stats.samples, 24 + 6 + 15);
    assert_eq!(stats.completed.total(), 3, "every submission completed");
    // Per-session attribution: one row per tenant, sample counts exact.
    let mut per_session: Vec<u64> = stats.per_session.iter().map(|s| s.samples).collect();
    per_session.sort_unstable();
    assert_eq!(per_session, vec![6, 15, 24]);
}

#[test]
fn weighted_fair_preserves_results_and_starves_nobody() {
    let engine = tiny_engine(2);
    let scheduler = engine.scheduler_with(3, SchedulerOptions::new().policy(WeightedFair));
    assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
    let stats = scheduler.stats();
    assert_eq!(stats.policy, "weighted-fair");
    assert_eq!(stats.completed.total(), 3, "no class may starve");
    assert_eq!(stats.queued, ClassCounts::default());
}

#[test]
fn deadline_first_preserves_in_order_delivery() {
    let engine = tiny_engine(3);
    let scheduler = engine.scheduler_with(2, SchedulerOptions::new().policy(DeadlineFirst));
    // Deadlines deliberately inverted against submission order, plus
    // one tenant with none (exercising the fair-share fallback).
    let mut tenants = unequal_tenants();
    tenants[0].deadline = Some(Duration::from_secs(60));
    tenants[1].deadline = Some(Duration::from_millis(10));
    assert_tenants_match_solo(&engine, &scheduler, &tenants);
    assert_eq!(scheduler.stats().completed.total(), 3);
}

/// Cancelling a high-priority session mid-round must retire its
/// submission (freeing its micro-batch share) while the surviving
/// sessions still produce their exact solo results.
#[test]
fn cancelling_a_high_priority_job_frees_its_share() {
    let engine = tiny_engine(4);
    let scheduler = engine.scheduler_with(2, SchedulerOptions::new().policy(WeightedFair));

    // Solo reference for the surviving best-effort tenant.
    let survivor_req = request(&engine, 12, 7);
    let mut solo = engine.session_seeded(7);
    let solo_counts = solo.run_request(&survivor_req).expect("solo runs");

    let cancel = CancelToken::new();
    let hook_cancel = cancel.clone();
    let mut interactive = engine
        .session_seeded(5)
        .with_options(
            StreamOptions::default()
                .with_class(QosClass::Interactive)
                .with_cancel(cancel)
                // Cancel as soon as the first micro-batch lands.
                .with_progress(move |_| hook_cancel.cancel()),
        )
        .attach(&scheduler);
    let mut survivor = engine
        .session_seeded(7)
        .with_class(QosClass::BestEffort)
        .attach(&scheduler);

    let (int_counts, surv_counts) = std::thread::scope(|s| {
        let hi = s.spawn(|| {
            interactive
                .run_request(&request(&engine, 64, 5))
                .expect("cancellation is not an error")
        });
        let sv = survivor
            .run_request(&survivor_req)
            .expect("survivor round runs");
        (hi.join().expect("interactive thread"), sv)
    });
    assert!(
        int_counts.0 >= 1 && int_counts.0 < 64,
        "cancellation failed to stop the interactive job early ({}/64)",
        int_counts.0
    );
    assert_eq!(surv_counts, solo_counts);
    assert_eq!(survivor.library().patterns(), solo.library().patterns());
    let stats = scheduler.stats();
    assert_eq!(
        stats.abandoned.get(QosClass::Interactive),
        1,
        "the cancelled submission must be retired, freeing its share"
    );
    assert_eq!(stats.completed.get(QosClass::BestEffort), 1);
}

#[test]
fn rejected_error_displays_and_has_no_source() {
    use std::error::Error as _;
    let err = PpError::Rejected {
        reason: "interactive submission queue is full (16 queued, limit 16)".into(),
    };
    let msg = err.to_string();
    assert!(msg.contains("admission rejected"), "display was: {msg}");
    assert!(msg.contains("interactive"), "display was: {msg}");
    assert!(err.source().is_none(), "Rejected is a leaf error");
}

#[test]
fn failed_outcome_displays_and_chains_to_the_root_cause() {
    use patternpaint::core::ArtifactError;
    use std::error::Error as _;
    let root = std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full");
    let outcome = JobOutcome::Failed(PpError::from(ArtifactError::Io {
        path: "model.ppck".into(),
        source: root,
    }));
    let msg = outcome.to_string();
    assert!(msg.starts_with("failed:"), "display was: {msg}");
    assert!(msg.contains("model.ppck"), "display was: {msg}");
    let err = outcome.error().expect("Failed carries the error");
    let artifact = err.source().expect("PpError::Artifact has a source");
    let io = artifact.source().expect("ArtifactError::Io has a source");
    assert!(io.to_string().contains("disk full"), "root was: {io}");

    // And through the service: a degenerate raw request fails with the
    // typed error, not a panic or a silent empty outcome.
    let engine = tiny_engine(5);
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = service
        .submit(JobSpec::raw(GenerationRequest::new(JobSet::new(), 0)))
        .expect("admission is about queue depth, not job contents");
    match handle.wait() {
        JobOutcome::Failed(e) => {
            assert!(matches!(e, PpError::EmptyRequest), "wrong error: {e}")
        }
        other => panic!("expected Failed, got: {other}"),
    }
}

/// The scheduler-level admission bound surfaces through a session
/// round as `PpError::Rejected` (and through the service as
/// `JobOutcome::Rejected`).
#[test]
fn scheduler_overflow_rejects_sessions_and_service_jobs() {
    let engine = tiny_engine(6);
    let scheduler = engine.scheduler_with(
        1,
        SchedulerOptions::new().limits(QueueLimits {
            interactive: 0,
            batch: 8,
            best_effort: 8,
        }),
    );
    let mut session = engine
        .session_seeded(9)
        .with_class(QosClass::Interactive)
        .attach(&scheduler);
    let err = session
        .run_request(&request(&engine, 4, 9))
        .expect_err("zero-capacity class must reject");
    assert!(
        matches!(err, PpError::Rejected { .. }),
        "wrong error: {err}"
    );

    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            scheduler: SchedulerOptions::new().limits(QueueLimits {
                interactive: 0,
                batch: 8,
                best_effort: 8,
            }),
            ..Default::default()
        },
    );
    let handle = service
        .submit(JobSpec::raw(request(&engine, 4, 9)).with_class(QosClass::Interactive))
        .expect("job-level admission has room; the scheduler rejects downstream");
    match handle.wait() {
        JobOutcome::Rejected { reason, partial } => {
            assert!(reason.contains("interactive"), "reason was: {reason}");
            assert_eq!(
                partial.generated, 0,
                "the very first round was refused, so nothing was kept"
            );
        }
        other => panic!("expected Rejected, got: {other}"),
    }
}

/// Policies are pluggable: a custom implementation drives dispatch and
/// results stay bit-identical (the policy can only reorder).
#[test]
fn custom_policies_plug_in_without_changing_results() {
    /// Perverse on purpose: always picks the *newest* submission.
    struct NewestFirst;
    impl SchedPolicy for NewestFirst {
        fn name(&self) -> &str {
            "newest-first"
        }
        fn pick(&mut self, queue: &[patternpaint::core::SchedView]) -> usize {
            queue.len() - 1
        }
    }
    let engine = tiny_engine(7);
    let scheduler = engine.scheduler_with(2, SchedulerOptions::new().policy(NewestFirst));
    assert_tenants_match_solo(&engine, &scheduler, &unequal_tenants());
    assert_eq!(scheduler.stats().policy, "newest-first");
}

/// Dropping the receiver mid-retry abandons the job cleanly: when a
/// fault kills attempt 1 and the caller cancels during the retry
/// backoff, the retry loop stops — no ghost re-submission ever reaches
/// the scheduler, and the abandoned submission is accounted exactly
/// once.
#[test]
fn cancel_during_retry_backoff_abandons_without_ghost_resubmission() {
    let engine = tiny_engine(8);
    // Session 1 (the job's only scheduler session) panics on its
    // second micro-batch, mid-submission.
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            scheduler: SchedulerOptions::new()
                .faults(FaultPlan::new().inject(1, Fault::PanicAt { batch: 1 })),
            ..Default::default()
        },
    );
    let handle = service
        .submit(
            // 12 jobs at tiny's batch_size 4 = 3 micro-batches, so the
            // panic at batch 1 leaves batch 2 queued — the abandoned
            // remainder the scheduler must purge.
            JobSpec::raw(request(&engine, 12, 40))
                // A long backoff guarantees the cancel lands inside it.
                .with_retry(RetryPolicy::new(2, Duration::from_millis(500))),
        )
        .expect("admitted");
    // Wait for attempt 1 to fail and enter backoff, and for the
    // scheduler to purge the dead submission's queued remainder.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().retries < 1 || service.scheduler_stats().abandoned.total() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "retry/abandon never happened: {:?}",
            service.scheduler_stats()
        );
        std::thread::yield_now();
    }
    handle.cancel();
    match handle.wait() {
        JobOutcome::Cancelled(report) => {
            assert_eq!(report.attempts, 1, "attempt 2 must never have started");
        }
        other => panic!("expected Cancelled, got: {other}"),
    }
    let sched = service.scheduler_stats();
    assert_eq!(
        sched.admitted.total(),
        1,
        "only attempt 1's submission ever reached the scheduler"
    );
    assert_eq!(sched.abandoned.total(), 1, "abandoned exactly once");
    assert_eq!(sched.worker_panics, 1);
    assert_eq!(
        service.stats().retries,
        1,
        "the retry was booked, then dropped"
    );
}

/// `wait_timeout` returns the handle unchanged while the job is still
/// running and the outcome once it resolves — a bounded wait that
/// neither cancels nor detaches the job.
#[test]
fn wait_timeout_returns_the_handle_until_the_job_resolves() {
    let engine = tiny_engine(9);
    // A 100 ms stall on the first micro-batch guarantees the job is
    // still running when the 1 ms wait expires.
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 1,
            scheduler: SchedulerOptions::new().faults(FaultPlan::new().inject(
                1,
                Fault::StallFor {
                    batch: 0,
                    duration: Duration::from_millis(100),
                },
            )),
            ..Default::default()
        },
    );
    let handle = service
        .submit(JobSpec::raw(request(&engine, 8, 41)))
        .expect("admitted");
    let handle = handle
        .wait_timeout(Duration::from_millis(1))
        .expect_err("the job is still stalled; the handle comes back");
    // The returned handle is the same job: a generous second wait
    // resolves it normally.
    match handle.wait_timeout(Duration::from_secs(30)) {
        Ok(outcome) => assert!(outcome.is_completed(), "outcome: {outcome}"),
        Err(_) => panic!("30 s was not enough for a stalled tiny round"),
    }
}
