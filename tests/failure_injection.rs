//! Failure-injection tests: mutate known-clean layouts and require the
//! sign-off checker to catch the damage. This is the property a DRC
//! engine lives or dies by — violations must not slip through.

use patternpaint::drc::check_layout;
use patternpaint::geometry::{Layout, Rect};
use patternpaint::pdk::{RuleBasedGenerator, SynthNode};
use proptest::prelude::*;

/// Shaving one column off a minimum-width wire must flag MinWidth (the
/// wire body drops to 2 < 3).
#[test]
fn shaved_wire_is_caught() {
    let node = SynthNode::default();
    let mut l = Layout::new(32, 32);
    l.fill_rect(Rect::new(4, 4, 3, 24));
    assert!(check_layout(&l, node.rules()).is_clean());
    l.clear_rect(Rect::new(4, 4, 1, 24)); // now width 2
    assert!(!check_layout(&l, node.rules()).is_clean());
}

/// Nudging two wires one pixel closer than the window must be caught.
#[test]
fn encroaching_wire_is_caught() {
    let node = SynthNode::default();
    let mut l = Layout::new(32, 32);
    l.fill_rect(Rect::new(4, 4, 3, 24));
    l.fill_rect(Rect::new(10, 4, 3, 24)); // gap 3: legal (A,A)
    assert!(check_layout(&l, node.rules()).is_clean());
    let mut bad = Layout::new(32, 32);
    bad.fill_rect(Rect::new(4, 4, 3, 24));
    bad.fill_rect(Rect::new(9, 4, 3, 24)); // gap 2 < 3
    assert!(!check_layout(&bad, node.rules()).is_clean());
}

/// Cutting a notch into a wire's flank creates an illegal neck.
#[test]
fn notched_wire_is_caught() {
    let node = SynthNode::default();
    let mut l = Layout::new(32, 32);
    l.fill_rect(Rect::new(4, 4, 5, 24)); // wide wire
    assert!(check_layout(&l, node.rules()).is_clean());
    // A shallow notch leaving a width-3 neck is *legal* (3 ∈ {3, 5} and
    // the 4px notch satisfies E2E) — the checker must not over-flag it.
    let mut shallow = l.clone();
    shallow.clear_rect(Rect::new(7, 12, 2, 4));
    assert!(check_layout(&shallow, node.rules()).is_clean());
    // A deep notch leaving a width-2 neck must be caught.
    l.clear_rect(Rect::new(6, 12, 3, 4));
    let report = check_layout(&l, node.rules());
    assert!(!report.is_clean(), "deep notch slipped through:\n{report}");
}

/// Splitting a wire with a too-small vertical gap must flag E2E.
#[test]
fn tight_split_is_caught() {
    let node = SynthNode::default();
    let mut l = Layout::new(32, 32);
    l.fill_rect(Rect::new(4, 4, 3, 10));
    l.fill_rect(Rect::new(4, 17, 3, 11)); // gap 3 < 4
    assert!(!check_layout(&l, node.rules()).is_clean());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Painting a random illegal-width (4px) full wire body into a clean
    /// sample always violates the discrete-width rule unless it merges
    /// with existing metal (in which case some rule still fires or the
    /// merge is genuinely legal geometry).
    #[test]
    fn prop_off_width_wire_caught(seed in 0u64..100, x in 2u32..26) {
        let node = SynthNode::default();
        let mut l = Layout::new(32, 32);
        l.fill_rect(Rect::new(x, 2, 4, 28)); // width 4 ∉ {3,5}, tall body
        let report = check_layout(&l, node.rules());
        prop_assert!(!report.is_clean(), "width-4 wire at {x} passed (seed {seed})");
    }

    /// Random single-pixel dust sprinkled onto empty space of a clean
    /// generated sample is always caught (min area / min width).
    #[test]
    fn prop_dust_is_caught(seed in 0u64..50, px in 1u32..30, py in 1u32..30) {
        let node = SynthNode::default();
        let mut gen = RuleBasedGenerator::new(node.clone(), seed);
        let mut l = gen.generate();
        // Only inject where a 3px halo is empty, so the dust stays an
        // isolated speck rather than legally merging into a shape.
        let halo_clear = (px.saturating_sub(3)..=(px + 3).min(31)).all(|x| {
            (py.saturating_sub(3)..=(py + 3).min(31)).all(|y| !l.get(x, y))
        });
        prop_assume!(halo_clear);
        l.set(px, py, true);
        let report = check_layout(&l, node.rules());
        prop_assert!(!report.is_clean(), "dust at ({px},{py}) passed");
    }

    /// Deleting an entire connected shape from a clean sample keeps it
    /// clean when the shape was isolated — DRC must not report phantom
    /// violations for absent geometry (no false positives from removal).
    #[test]
    fn prop_removing_isolated_shape_stays_clean(seed in 0u64..50) {
        let node = SynthNode::default();
        let mut gen = RuleBasedGenerator::new(node.clone(), seed);
        let l = gen.generate();
        let comps = patternpaint::geometry::connected_components(&l);
        prop_assume!(comps.len() >= 2);
        let mut cleared = l.clone();
        cleared.clear_rect(comps[0].bbox);
        // Clearing a bbox may clip a neighbouring shape only if bboxes
        // overlap; skip those cases.
        prop_assume!(!comps[1..].iter().any(|c| c.bbox.overlaps(&comps[0].bbox)));
        let report = check_layout(&cleared, node.rules());
        prop_assert!(report.is_clean(), "removal introduced violations:\n{report}");
    }
}
