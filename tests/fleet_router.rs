//! pp-fleet end to end, through the public API:
//!
//! * **Bit-identity** — a fleet of N replicas produces per-job results
//!   identical to a fleet of one, for the same `JobSpec` set, across
//!   replica counts and scheduling policies (the router changes *where*
//!   a job runs, never its arithmetic).
//! * **Retry failover** — a transient fault consumes a retry attempt
//!   and the re-run lands on a different replica (the failing replica
//!   is barred from taking the job back while a peer is usable).
//! * **Replica loss** — a replica whose supervised scheduler loses its
//!   whole worker pool is retired: queued jobs redistribute, the
//!   in-flight job fails over without consuming an attempt, and the
//!   fleet keeps serving on the survivors.
//! * **Session affinity** — keyed jobs pin to the replica holding
//!   their session state, resume it across jobs, and migrate the
//!   serialized state when their replica is drained.
//! * **Admission** — per-class depth limits and best-effort
//!   back-pressure shedding reject at the router, counted by cause;
//!   cancellation and hard deadlines reach queued jobs.
//!
//! The `chaos_` test joins the `./ci.sh --chaos` seed sweep.

use patternpaint::core::{
    DeadlineFirst, Engine, Fault, FaultPlan, Fleet, FleetOptions, GenerationRequest, JobOutcome,
    JobSet, JobSpec, MemStore, PipelineConfig, PpError, QosClass, QueueLimits, RetryPolicy,
    SchedPolicy, SchedView, SchedulerOptions, WeightedFair,
};
use patternpaint::geometry::Layout;
use patternpaint::pdk::SynthNode;
use pp_inpaint::MaskSet;
use std::time::Duration;

fn tiny_engine(seed: u64) -> Engine {
    Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(seed)
        .untrained_engine()
        .expect("tiny config is valid")
}

/// An engine checkpoint in a fresh store — what `Fleet::open` replicates.
fn saved_store(seed: u64) -> (Engine, MemStore) {
    let engine = tiny_engine(seed);
    let store = MemStore::new();
    engine.save(&store).expect("engine saves");
    (engine, store)
}

fn request(engine: &Engine, n: usize, seed: u64) -> GenerationRequest {
    let masks = MaskSet::Default.masks(engine.node().clip());
    GenerationRequest::new(JobSet::cycle(engine.starters(), &masks, n), seed)
}

/// The library a never-faulted solo session grows for `request(n, seed)`
/// with session seed `seed` — the bit-identity reference.
fn solo_patterns(engine: &Engine, n: usize, seed: u64) -> Vec<Layout> {
    let mut solo = engine.session_seeded(seed);
    solo.run_request(&request(engine, n, seed))
        .expect("solo round runs");
    solo.into_library().patterns().to_vec()
}

/// A policy whose every pick panics: the supervisor respawns the worker
/// loop until the respawn budget runs out, at which point the replica's
/// whole worker pool is gone — the fleet's replica-loss trigger.
struct AlwaysPanic;
impl SchedPolicy for AlwaysPanic {
    fn name(&self) -> &str {
        "always-panic"
    }
    fn pick(&mut self, _queue: &[SchedView]) -> usize {
        panic!("policy wedged on purpose");
    }
}

/// The same JobSpec set is replayed against every fleet shape; each
/// job's library must match solo runs of the same seeds exactly.
#[test]
fn fleet_matches_single_replica_bit_identically() {
    let (engine, store) = saved_store(5);
    let seeds = [201u64, 202, 203, 204];
    let jobs = [6usize, 4, 8, 5];
    let classes = [
        QosClass::Batch,
        QosClass::Interactive,
        QosClass::BestEffort,
        QosClass::Batch,
    ];
    let reference: Vec<Vec<Layout>> = seeds
        .iter()
        .zip(jobs)
        .map(|(&seed, n)| solo_patterns(&engine, n, seed))
        .collect();
    for policy in ["round-robin", "weighted-fair", "deadline-first"] {
        for replicas in [1usize, 2, 4] {
            let fleet = Fleet::open(
                &store,
                FleetOptions::new()
                    .with_replicas(replicas)
                    .scheduler_factory(move |_| match policy {
                        "weighted-fair" => SchedulerOptions::new().policy(WeightedFair),
                        "deadline-first" => SchedulerOptions::new().policy(DeadlineFirst),
                        _ => SchedulerOptions::new(),
                    }),
            )
            .expect("fleet opens from the checkpoint");
            assert_eq!(fleet.replicas(), replicas);
            let handles: Vec<_> = seeds
                .iter()
                .zip(jobs)
                .zip(classes)
                .map(|((&seed, n), class)| {
                    fleet
                        .submit(
                            JobSpec::raw(request(&engine, n, seed))
                                .with_seed(seed)
                                .with_class(class),
                        )
                        .expect("admitted")
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let report = match handle.wait() {
                    JobOutcome::Completed(report) => report,
                    other => panic!("job {i} under {policy}/N={replicas}: {other}"),
                };
                assert_eq!(
                    report.library.patterns(),
                    &reference[i][..],
                    "job {i} diverged under {policy} with {replicas} replicas"
                );
            }
            let stats = fleet.stats();
            assert_eq!(stats.finished.total(), 4);
            assert_eq!(stats.active.total(), 0);
            assert_eq!(stats.aggregated.samples, jobs.iter().sum::<usize>() as u64);
        }
    }
}

/// Both replicas schedule a transient i/o fault at their first session's
/// slot 0, so wherever attempt 1 lands it fails; the retry is barred
/// from the failing replica, fails again on the peer's first session,
/// and attempt 3 completes back on the first replica's second session.
/// Deterministic regardless of who wins the initial steal race — and it
/// proves the retry crossed replicas.
#[test]
fn transient_retry_fails_over_to_another_replica() {
    let (engine, store) = saved_store(6);
    let solo = solo_patterns(&engine, 6, 33);
    let fleet = Fleet::open(
        &store,
        FleetOptions::new().with_replicas(2).scheduler_factory(|_| {
            SchedulerOptions::new().faults(FaultPlan::new().inject(1, Fault::ErrAt { batch: 0 }))
        }),
    )
    .expect("fleet opens");
    let handle = fleet
        .submit(
            JobSpec::raw(request(&engine, 6, 33))
                .with_seed(33)
                .with_retry(RetryPolicy::new(3, Duration::from_millis(1))),
        )
        .expect("admitted");
    let report = handle
        .wait()
        .into_report()
        .expect("retries absorb both faults");
    assert_eq!(
        report.attempts, 3,
        "one attempt per replica, then the clean re-run"
    );
    assert_eq!(report.library.patterns(), &solo[..], "retried run diverged");
    let stats = fleet.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(
        stats.failovers, 0,
        "transient retries are not replica-loss failovers"
    );
    for rep in &stats.replicas {
        assert!(
            rep.scheduler.admitted.total() >= 1,
            "replica {} never saw the job — the retry did not fail over",
            rep.index
        );
    }
}

/// Kill one replica's whole worker pool mid-fleet: queued jobs must
/// redistribute to the survivor, the in-flight job must fail over
/// without consuming a retry attempt, and every job must still match
/// its solo reference bit for bit.
#[test]
fn replica_loss_redistributes_queued_jobs() {
    let (engine, store) = saved_store(7);
    let seeds = [301u64, 302, 303, 304, 305];
    let reference: Vec<Vec<Layout>> = seeds
        .iter()
        .map(|&seed| solo_patterns(&engine, 4, seed))
        .collect();
    let fleet = Fleet::open(
        &store,
        FleetOptions::new().with_replicas(2).scheduler_factory(|i| {
            if i == 0 {
                SchedulerOptions::new().policy(AlwaysPanic)
            } else {
                SchedulerOptions::new()
            }
        }),
    )
    .expect("fleet opens");
    // Pin the first job to the doomed replica so its pool provably
    // dies executing it; the rest queue behind with the same hint.
    let handles: Vec<_> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let mut spec = JobSpec::raw(request(&engine, 4, seed))
                .with_seed(seed)
                .with_placement(0);
            if i == 0 {
                spec = spec.with_affinity("doomed-tenant");
            }
            fleet.submit(spec).expect("admitted")
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let report = match handle.wait() {
            JobOutcome::Completed(report) => report,
            other => panic!("job {i} did not survive the replica loss: {other}"),
        };
        assert_eq!(
            report.attempts, 1,
            "job {i}: failover must not consume a retry attempt"
        );
        assert_eq!(
            report.library.patterns(),
            &reference[i][..],
            "job {i} diverged after redistribution"
        );
    }
    let stats = fleet.stats();
    assert!(!stats.replicas[0].healthy, "the wedged replica must retire");
    assert!(stats.replicas[1].healthy);
    assert!(stats.failovers >= 1, "the in-flight job failed over");
    assert!(
        stats.steals + stats.redistributed >= 1,
        "queued jobs moved off the lost replica somehow"
    );
    // The fleet keeps serving on the survivor — a stale placement hint
    // falls back to a usable replica.
    let extra = fleet
        .submit(
            JobSpec::raw(request(&engine, 4, 306))
                .with_seed(306)
                .with_placement(0),
        )
        .expect("admitted after the loss");
    assert!(extra.wait().is_completed());
    // Draining the survivor leaves nothing usable: submission rejects.
    assert!(fleet.drain(1));
    let err = fleet
        .submit(JobSpec::raw(request(&engine, 4, 307)))
        .expect_err("no usable replicas left");
    assert!(
        matches!(err, PpError::Rejected { .. }),
        "wrong error: {err}"
    );
}

/// Affinity jobs continue one session across submissions: the second
/// job resumes on the pinned replica (hit), and after draining that
/// replica the third job migrates the serialized session and continues
/// it — the final library equals one solo session iterated three times.
#[test]
fn affinity_pins_resumes_and_migrates() {
    let (engine, store) = saved_store(8);
    let fleet = Fleet::open(&store, FleetOptions::new().with_replicas(2)).expect("fleet opens");
    let mut reports = Vec::new();
    for _ in 0..2 {
        let handle = fleet
            .submit(
                JobSpec::iterative(1)
                    .with_seed(40)
                    .with_affinity("tenant-a"),
            )
            .expect("admitted");
        reports.push(handle.wait().into_report().expect("affinity job completes"));
    }
    assert!(
        reports[1].generated > reports[0].generated,
        "the second job continued the session, it did not restart it"
    );
    let stats = fleet.stats();
    assert!(
        stats.affinity_hits >= 1,
        "the resume was a pinned-replica hit"
    );
    assert_eq!(stats.migrations, 0);
    // The session's home is the only replica that sampled anything.
    let home = stats
        .replicas
        .iter()
        .find(|r| r.scheduler.samples > 0)
        .expect("some replica ran the jobs")
        .index;
    assert!(fleet.drain(home));
    let handle = fleet
        .submit(
            JobSpec::iterative(1)
                .with_seed(40)
                .with_affinity("tenant-a"),
        )
        .expect("admitted");
    let after = handle.wait().into_report().expect("migrated job completes");
    let stats = fleet.stats();
    assert!(
        stats.migrations >= 1,
        "the session state was copied between stores"
    );
    assert!(stats.affinity_misses >= 1);
    assert!(
        !stats.replicas[home].healthy,
        "the drained replica stays retired"
    );
    // Reference: one uninterrupted session, initial round + three
    // refinement iterations.
    let mut solo = engine.session_seeded(40);
    solo.run_request(&solo.initial_request())
        .expect("solo initial");
    solo.seed_starters();
    solo.iterate(3).expect("solo iterates");
    assert_eq!(
        after.library.patterns(),
        solo.library().patterns(),
        "the migrated continuation diverged from the uninterrupted session"
    );
    assert_eq!(after.generated, solo.generated_total());
    // An invalid affinity key is rejected before admission.
    let err = fleet
        .submit(JobSpec::iterative(1).with_affinity("bad/key"))
        .expect_err("slash is outside the artifact key charset");
    assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
}

/// Admission rejects at the router, counted by cause: per-class depth
/// fleet-wide, and best-effort shedding on the merged wait p90.
#[test]
fn admission_rejects_by_depth_and_backpressure() {
    let (engine, store) = saved_store(9);
    let fleet = Fleet::open(
        &store,
        FleetOptions::new()
            .with_replicas(1)
            .with_job_limits(QueueLimits {
                batch: 1,
                ..QueueLimits::default()
            })
            .with_backpressure_shed(Duration::ZERO)
            .scheduler_factory(|_| {
                SchedulerOptions::new().faults(FaultPlan::new().stall_all(Duration::from_millis(3)))
            }),
    )
    .expect("fleet opens");
    // Depth: with a fleet-wide batch limit of 1, the second batch job
    // is refused while the first is still in flight.
    let first = fleet
        .submit(JobSpec::raw(request(&engine, 8, 50)).with_seed(50))
        .expect("admitted");
    let err = fleet
        .submit(JobSpec::raw(request(&engine, 4, 51)))
        .expect_err("the batch class is at its fleet-wide limit");
    assert!(
        matches!(err, PpError::Rejected { .. }),
        "wrong error: {err}"
    );
    assert!(first.wait().is_completed());
    // Back-pressure: the stalled forward passes left nonzero waits in
    // the recent window, so with a zero threshold the merged p90 sheds
    // best-effort work — while interactive work is still admitted.
    let stats = fleet.stats();
    assert!(
        stats.aggregated.wait_p90_micros > 0,
        "the stall must leave a visible wait p90, got stats: {stats:?}"
    );
    let err = fleet
        .submit(JobSpec::raw(request(&engine, 4, 52)).with_class(QosClass::BestEffort))
        .expect_err("best-effort work is shed under back-pressure");
    match &err {
        PpError::Rejected { reason } => assert!(
            reason.contains("shed"),
            "rejection must name the cause, got: {reason}"
        ),
        other => panic!("wrong error: {other}"),
    }
    let ok = fleet
        .submit(
            JobSpec::raw(request(&engine, 4, 53))
                .with_seed(53)
                .with_class(QosClass::Interactive),
        )
        .expect("interactive work is never shed by back-pressure");
    assert!(ok.wait().is_completed());
    let stats = fleet.stats();
    assert_eq!(stats.rejected_depth, 1);
    assert_eq!(stats.rejected_backpressure, 1);
}

/// Cancellation and hard deadlines reach jobs that are still queued at
/// the router: behind a slow job on a one-replica fleet, a cancelled
/// job settles `Cancelled` and an expired one `TimedOut`, both with
/// empty reports — they never occupied a replica.
#[test]
fn cancellation_and_deadlines_reach_queued_jobs() {
    let (engine, store) = saved_store(10);
    let fleet = Fleet::open(
        &store,
        FleetOptions::new().with_replicas(1).scheduler_factory(|_| {
            SchedulerOptions::new().faults(FaultPlan::new().stall_all(Duration::from_millis(25)))
        }),
    )
    .expect("fleet opens");
    let slow = fleet
        .submit(JobSpec::raw(request(&engine, 8, 60)).with_seed(60))
        .expect("admitted");
    let cancelled = fleet
        .submit(JobSpec::raw(request(&engine, 4, 61)))
        .expect("admitted");
    cancelled.cancel();
    let expired = fleet
        .submit(JobSpec::raw(request(&engine, 4, 62)).with_hard_deadline(Duration::from_millis(1)))
        .expect("admitted");
    match cancelled.wait() {
        JobOutcome::Cancelled(report) => {
            assert_eq!(report.generated, 0, "cancelled while queued: nothing ran");
        }
        other => panic!("expected Cancelled, got: {other}"),
    }
    match expired.wait() {
        JobOutcome::TimedOut { partial } => {
            assert_eq!(partial.generated, 0, "expired while queued: nothing ran");
        }
        other => panic!("expected TimedOut, got: {other}"),
    }
    assert!(
        slow.wait().is_completed(),
        "the slow job itself is unaffected"
    );
}

/// The `SchedulerStats::merge` surface the router's admission reads:
/// replica counters sum and the recent windows concatenate.
#[test]
fn fleet_stats_aggregate_replica_schedulers() {
    let (engine, store) = saved_store(11);
    let fleet = Fleet::open(&store, FleetOptions::new().with_replicas(2)).expect("fleet opens");
    let handles: Vec<_> = (0..4)
        .map(|i| {
            fleet
                .submit(
                    JobSpec::raw(request(&engine, 4, 70 + i))
                        .with_seed(70 + i)
                        .with_placement(i),
                )
                .expect("admitted")
        })
        .collect();
    for handle in handles {
        assert!(handle.wait().is_completed());
    }
    let stats = fleet.stats();
    assert_eq!(stats.replicas.len(), 2);
    let summed: u64 = stats.replicas.iter().map(|r| r.scheduler.samples).sum();
    assert_eq!(stats.aggregated.samples, summed);
    assert_eq!(stats.aggregated.samples, 16);
    assert_eq!(stats.submitted.total(), 4);
    assert_eq!(stats.finished.total(), 4);
}

/// Replica loss under a seeded placement pattern, for the CI chaos
/// sweep (`./ci.sh --chaos` runs this per `PP_CHAOS_SEED`): whichever
/// replica the seed dooms, every job completes bit-identically on the
/// survivor and the failover accounting holds.
#[test]
fn chaos_replica_loss_redistribution_is_seed_stable() {
    let seed: u64 = std::env::var("PP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let victim = (seed % 2) as usize;
    let job_count = 3 + (seed % 3) as usize;
    let (engine, store) = saved_store(12);
    let seeds: Vec<u64> = (0..job_count as u64).map(|i| seed * 100 + i).collect();
    let reference: Vec<Vec<Layout>> = seeds
        .iter()
        .map(|&s| solo_patterns(&engine, 4, s))
        .collect();
    let fleet = Fleet::open(
        &store,
        FleetOptions::new()
            .with_replicas(2)
            .scheduler_factory(move |i| {
                if i == victim {
                    SchedulerOptions::new().policy(AlwaysPanic)
                } else {
                    SchedulerOptions::new()
                }
            }),
    )
    .expect("fleet opens");
    let handles: Vec<_> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut spec = JobSpec::raw(request(&engine, 4, s))
                .with_seed(s)
                .with_placement(victim as u64);
            if i == 0 {
                // The pinned first job guarantees the doomed replica
                // actually executes something and dies doing it.
                spec = spec.with_affinity("chaos-tenant");
            }
            fleet.submit(spec).expect("admitted")
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let report = match handle.wait() {
            JobOutcome::Completed(report) => report,
            other => panic!("seed {seed}: job {i} lost to the dead replica: {other}"),
        };
        assert_eq!(
            report.attempts, 1,
            "seed {seed}: failover consumed an attempt"
        );
        assert_eq!(
            report.library.patterns(),
            &reference[i][..],
            "seed {seed}: job {i} diverged"
        );
    }
    let stats = fleet.stats();
    assert!(
        !stats.replicas[victim].healthy,
        "seed {seed}: victim not retired"
    );
    assert!(stats.replicas[1 - victim].healthy);
    assert!(stats.failovers >= 1, "seed {seed}: no failover recorded");
}
